open Dynmos_util
open Dynmos_cell
open Dynmos_faultsim
open Dynmos_circuits

(* Driver-level policy tests for the unified campaign driver.  Every
   engine is a thin kernel under [Campaign.run_patterns]/[run_sites],
   so the policies tested here — limits precedence, checkpoint resume,
   the limited-run-is-a-prefix law — are properties of the one driver,
   exercised through several kernels to prove nothing leaks back into
   engine code. *)

let check = Alcotest.(check bool)

let fixture () =
  let nl =
    Generators.random_monotone ~seed:41 ~n_inputs:8 ~n_gates:30
      ~technology:Technology.Domino_cmos ()
  in
  let u = Faultsim.universe nl in
  let prng = Prng.create 43 in
  (u, Faultsim.random_patterns prng ~n_inputs:8 ~count:200)

type run =
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  Faultsim.universe ->
  bool array array ->
  Faultsim.summary

let engines : (string * run) list =
  [
    ( "serial",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_serial ?deadline ?max_evals ?interrupt u pats );
    ( "parallel",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_parallel ?deadline ?max_evals ?interrupt u pats );
    ( "deductive",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_deductive ?deadline ?max_evals ?interrupt u pats );
    ( "concurrent",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_concurrent ?deadline ?max_evals ?interrupt u pats );
    ( "ppsfp",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_ppsfp ~group:5 ?deadline ?max_evals ?interrupt u pats );
    ( "domains",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_domain_parallel ~num_domains:2 ~min_work_per_domain:0 ?deadline
          ?max_evals ?interrupt u pats );
  ]

let stop_cause (s : Faultsim.summary) =
  match s.Faultsim.outcome with
  | Outcome.Partial { Outcome.stopped = Some c; _ } -> Some c
  | _ -> None

(* --- Limits precedence -------------------------------------------------------- *)

(* When several limits trip in the same polling window the driver's
   gauge publishes exactly one cause, fixed by the polling order:
   interrupt > deadline > budget.  Each pair (and the triple) is pinned
   here on every engine — the precedence must not depend on which
   kernel the campaign runs. *)
let test_limits_precedence () =
  let u, pats = fixture () in
  let past = Unix.gettimeofday () -. 60.0 in
  let yes () = true in
  List.iter
    (fun (name, (run : run)) ->
      let cause ?deadline ?max_evals ?interrupt () =
        stop_cause (run ?deadline ?max_evals ?interrupt u pats)
      in
      check (name ^ ": interrupt beats deadline") true
        (cause ~interrupt:yes ~deadline:past () = Some Outcome.Interrupted);
      check (name ^ ": interrupt beats budget") true
        (cause ~interrupt:yes ~max_evals:1 () = Some Outcome.Interrupted);
      check (name ^ ": deadline beats budget") true
        (cause ~deadline:past ~max_evals:1 () = Some Outcome.Deadline);
      check (name ^ ": interrupt beats both") true
        (cause ~interrupt:yes ~deadline:past ~max_evals:1 ()
        = Some Outcome.Interrupted))
    engines

(* --- Checkpoint resume through the driver ------------------------------------- *)

(* Checkpoint write/preload lives only in the driver, so resuming must
   work identically through a propagation kernel that historically had
   its own (now deleted) checkpoint plumbing.  One interrupted run +
   one resumed run must equal one uninterrupted run, bit for bit. *)
let test_checkpoint_resume_propagation_kernel () =
  let u, pats = fixture () in
  let reference = Faultsim.run_deductive ~drop:false u pats in
  let path = Filename.temp_file "dynmos_campaign_ckpt" ".dat" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let ctl = Faultsim.checkpoint_ctl ~path ~interval:7 u pats in
      let s1 =
        Faultsim.run_deductive ~drop:false ~max_evals:400 ~checkpoint:ctl u pats
      in
      check "first leg stopped" true (not (Outcome.is_complete s1.Faultsim.outcome));
      check "first leg left a checkpoint" true (Sys.file_exists path);
      let ctl2 = Faultsim.checkpoint_ctl ~path ~interval:7 ~resume:true u pats in
      let s2 = Faultsim.run_deductive ~drop:false ~checkpoint:ctl2 u pats in
      check "resumed leg complete" true (Outcome.is_complete s2.Faultsim.outcome);
      check "combined = uninterrupted" true
        (s2.Faultsim.first_detection = reference.Faultsim.first_detection))

(* --- The prefix law ----------------------------------------------------------- *)

(* Any kernel under any limit combination yields a pattern-prefix of
   the unlimited run: a site is detected iff the unlimited run detects
   it within the first [patterns_done] patterns, at the same pattern.
   This is the strongest statement of "limits lose only the tail" and
   it holds exactly for every pattern-sweep kernel because the driver
   stops only at unit boundaries. *)
let qcheck_limited_is_prefix =
  QCheck2.Test.make ~name:"any kernel x limits is a prefix of the unlimited run"
    ~count:60
    QCheck2.Gen.(triple (int_range 0 4) (int_range 0 2) (int_range 1 60))
    (fun (engine_ix, limit_kind, scale) ->
      let u, pats = fixture () in
      let name, (run : run) = List.nth engines engine_ix in
      let reference = run u pats in
      let limited =
        match limit_kind with
        | 0 -> run ~max_evals:(scale * 500) u pats
        | 1 ->
            (* deterministic interrupt: trip after [scale] gauge polls *)
            let polls = ref 0 in
            run
              ~interrupt:(fun () ->
                incr polls;
                !polls > scale)
              u pats
        | _ ->
            (* both; precedence is covered elsewhere, here only the
               prefix shape matters *)
            let polls = ref 0 in
            run ~max_evals:(scale * 500)
              ~interrupt:(fun () ->
                incr polls;
                !polls > 2 * scale)
              u pats
      in
      let cut = limited.Faultsim.patterns_done in
      Array.for_all2
        (fun l r ->
          match (l, r) with
          | Some p, Some p' -> p = p' && p < cut
          | None, Some p -> p >= cut
          | None, None -> true
          | Some _, None ->
              QCheck2.Test.fail_reportf "%s: limited run invented a detection" name)
        limited.Faultsim.first_detection reference.Faultsim.first_detection)

(* The domains engine sweeps sites, not patterns, so its prefix law is
   per-site: each site is either fully simulated (matching the
   unlimited run verbatim) or not reported at all. *)
let qcheck_limited_domains_is_site_subset =
  QCheck2.Test.make ~name:"limited domains run is a site-subset of the unlimited run"
    ~count:30
    QCheck2.Gen.(int_range 1 40)
    (fun scale ->
      let u, pats = fixture () in
      let reference =
        Faultsim.run_domain_parallel ~num_domains:2 ~min_work_per_domain:0 u pats
      in
      let limited =
        Faultsim.run_domain_parallel ~num_domains:2 ~min_work_per_domain:0
          ~max_evals:(scale * 500) u pats
      in
      Array.for_all2
        (fun l r -> l = None || l = r)
        limited.Faultsim.first_detection reference.Faultsim.first_detection)

let () =
  Alcotest.run "campaign"
    [
      ( "driver policies",
        [
          Alcotest.test_case "limits precedence matrix" `Quick test_limits_precedence;
          Alcotest.test_case "checkpoint resume through a propagation kernel" `Quick
            test_checkpoint_resume_propagation_kernel;
          QCheck_alcotest.to_alcotest qcheck_limited_is_prefix;
          QCheck_alcotest.to_alcotest qcheck_limited_domains_is_site_subset;
        ] );
    ]
