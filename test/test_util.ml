open Dynmos_util

(* Tests for the deterministic PRNG every stochastic component relies on. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 100 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 100 (fun _ -> Prng.next_int64 b) in
  check "same seed, same stream" true (xs = ys);
  let c = Prng.create 43 in
  let zs = List.init 100 (fun _ -> Prng.next_int64 c) in
  check "different seed, different stream" true (xs <> zs)

let test_ranges () =
  let p = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int p 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of range";
    let f = Prng.float p in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range";
    if Prng.bits62 p < 0 then Alcotest.fail "bits62 negative"
  done;
  check "ranges ok" true true

let test_uniformity () =
  let p = Prng.create 11 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Prng.int p 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      if abs (c - expected) > expected / 10 then
        Alcotest.fail (Fmt.str "bucket %d skewed: %d" i c))
    buckets;
  check "uniform" true true

(* Rejection sampling removes the modulo bias of [bits62 mod bound]: with a
   bound just above half of 2^62, plain mod would return values below
   2^62 mod bound twice as often.  Check exact-uniformity machinery on a
   non-power-of-two bound (chi-square-ish tolerance) and the power-of-two
   fast path against the masked raw stream. *)
let test_int_unbiased_bound () =
  let p = Prng.create 17 in
  let bound = 6 in
  let buckets = Array.make bound 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let v = Prng.int p bound in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / bound in
      if abs (c - expected) > expected / 10 then
        Alcotest.fail (Fmt.str "bucket %d skewed: %d" i c))
    buckets;
  let a = Prng.create 23 and b = Prng.create 23 in
  for _ = 1 to 1000 do
    check_i "pow2 path = masked bits62" (Prng.bits62 a land 15) (Prng.int b 16)
  done

let test_bernoulli () =
  let p = Prng.create 13 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli p 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  check "bernoulli 0.3" true (Float.abs (f -. 0.3) < 0.01);
  check "p=0 never" false (Prng.bernoulli p 0.0)

let test_split_independence () =
  let p = Prng.create 5 in
  let q = Prng.split p in
  let xs = List.init 50 (fun _ -> Prng.next_int64 p) in
  let ys = List.init 50 (fun _ -> Prng.next_int64 q) in
  check "split streams differ" true (xs <> ys);
  (* splitting is itself deterministic *)
  let p1 = Prng.create 5 in
  let q1 = Prng.split p1 in
  let ys' = List.init 50 (fun _ -> Prng.next_int64 q1) in
  check "split deterministic" true (ys = ys')

let test_shuffle_permutation () =
  let p = Prng.create 9 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check "shuffle is a permutation" true (sorted = Array.init 20 Fun.id);
  check "shuffle moved something" true (a <> Array.init 20 Fun.id)

(* Save/restore round-trips the generator mid-stream: a generator that is
   saved after an arbitrary warm-up and restored in a fresh value must
   produce the exact same continuation stream, across every draw kind. *)
let test_save_restore_midstream () =
  let p = Prng.create 31 in
  (* advance past the seed expansion with a mix of draw kinds *)
  for _ = 1 to 137 do
    ignore (Prng.next_int64 p);
    ignore (Prng.int p 7);
    ignore (Prng.float p)
  done;
  let token = Prng.save p in
  let q = Prng.restore token in
  check "save does not advance: token is stable" true (String.equal token (Prng.save p));
  let stream g =
    List.init 500 (fun i ->
        match i mod 4 with
        | 0 -> Int64.to_string (Prng.next_int64 g)
        | 1 -> string_of_int (Prng.int g 1000)
        | 2 -> string_of_float (Prng.float g)
        | _ -> string_of_bool (Prng.bool g))
  in
  check "restored generator continues the exact stream" true (stream p = stream q);
  (* and the round-trip composes: save the restored copy again *)
  let r = Prng.restore (Prng.save q) in
  check "second round-trip still identical" true (stream q = stream r)

let test_restore_rejects_garbage () =
  let bad s = match Prng.restore s with exception Invalid_argument _ -> true | _ -> false in
  check "empty" true (bad "");
  check "wrong magic" true (bad "mt19937:v1:0:0:0:0");
  check "short words" true (bad "xoshiro256ss:v1:00:00:00:00");
  check "non-hex" true (bad "xoshiro256ss:v1:zzzzzzzzzzzzzzzz:0000000000000000:0000000000000000:0000000000000001");
  check "all-zero state" true
    (bad "xoshiro256ss:v1:0000000000000000:0000000000000000:0000000000000000:0000000000000000");
  check "valid token accepted" true
    (match Prng.restore (Prng.save (Prng.create 1)) with _ -> true)

let test_choose () =
  let p = Prng.create 3 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let v = Prng.choose p a in
    if not (Array.exists (String.equal v) a) then Alcotest.fail "choose outside array"
  done;
  check_i "singleton" 1 (Prng.choose p [| 1 |])

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "ranges" `Quick test_ranges;
          Alcotest.test_case "uniformity" `Quick test_uniformity;
          Alcotest.test_case "int unbiased" `Quick test_int_unbiased_bound;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "save/restore mid-stream" `Quick test_save_restore_midstream;
          Alcotest.test_case "restore validation" `Quick test_restore_rejects_garbage;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
    ]
