open Dynmos_server
open Dynmos_faultsim
open Dynmos_circuits
module Obs = Dynmos_obs.Obs

(* Tests for the serve loop: the strict JSON parser, request validation,
   and the end-to-end robustness contract — a request can be malformed,
   crashing, over budget or rejected for overload, and the loop answers
   every line exactly once and keeps serving. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* --- Helpers ------------------------------------------------------------------ *)

(* Run a server over an in-memory line list; returns (stop, responses). *)
let run_server ?config ?drain lines =
  let t = Server.create ?config () in
  let remaining = ref lines in
  let read = ref 0 in
  let input () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        incr read;
        Some l
  in
  let m = Mutex.create () in
  let out = ref [] in
  let output s =
    Mutex.lock m;
    out := s :: !out;
    Mutex.unlock m
  in
  let drain = match drain with None -> None | Some f -> Some (fun () -> f !read) in
  let stop = Server.serve t ?drain ~input ~output () in
  (stop, List.rev !out, !read)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "response is not valid JSON: %s (%s)" s e

let field name resp =
  match Json.member name (parse_ok resp) with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name resp

let status resp = match field "status" resp with Json.String s -> s | _ -> "?"
let line_of resp = match field "line" resp with Json.Int n -> n | _ -> -1

(* The response answering input line [n]. *)
let response_for n resps =
  match List.find_opt (fun r -> line_of r = n) resps with
  | Some r -> r
  | None -> Alcotest.failf "no response for line %d" n

let small_config =
  {
    Server.default_config with
    Server.max_patterns = 4096;
    max_seconds = 30.0;
  }

(* --- JSON parser ---------------------------------------------------------------- *)

let test_json_values () =
  let ok s v = Alcotest.(check bool) s true (Json.parse s = Ok v) in
  ok "null" Json.Null;
  ok "true" (Json.Bool true);
  ok "42" (Json.Int 42);
  ok "-17" (Json.Int (-17));
  ok "1.5" (Json.Float 1.5);
  ok "1e3" (Json.Float 1000.0);
  ok "\"a\"" (Json.String "a");
  ok "[1,2]" (Json.List [ Json.Int 1; Json.Int 2 ]);
  ok "{\"a\":1}" (Json.Obj [ ("a", Json.Int 1) ]);
  ok " { \"a\" : [ true , null ] } "
    (Json.Obj [ ("a", Json.List [ Json.Bool true; Json.Null ]) ]);
  (* escapes, including a surrogate pair *)
  check "escape" true
    (Json.parse "\"a\\n\\u0041\\ud83d\\ude00\"" = Ok (Json.String "a\nA\xf0\x9f\x98\x80"))

let test_json_errors () =
  let bad s = check s true (Result.is_error (Json.parse s)) in
  bad "";
  bad "{";
  bad "[1,";
  bad "{\"a\":}";
  bad "tru";
  bad "01";
  bad "1.";
  bad "- 1";
  bad "\"unterminated";
  bad "\"\x00\"";  (* raw NUL in a string *)
  bad "\"\\ud83d\"";  (* lone high surrogate *)
  bad "\"\\udc00\"";  (* lone low surrogate *)
  bad "{\"a\":1,\"a\":2}";  (* duplicate key *)
  bad "{} extra";
  bad "nullx";
  (* deep nesting must be a clean error, not a stack overflow *)
  bad (String.make 100000 '[');
  (* huge integer literals degrade to floats; infinity itself parses *)
  check "huge int becomes float" true
    (match Json.parse (String.make 400 '9') with Ok (Json.Float f) -> f = infinity | _ -> false)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("n", Json.Int (-3));
        ("f", Json.Float 0.25);
        ("l", Json.List [ Json.Null; Json.Bool false ]);
        ("o", Json.Obj [ ("k", Json.Int 1) ]);
      ]
  in
  check "print/parse round-trip" true (Json.parse (Json.to_string v) = Ok v)

(* --- Request validation --------------------------------------------------------- *)

let limits =
  { Protocol.max_patterns = 1000; max_seconds = 5.0; max_request_evals = Some 10_000 }

let parse line = Protocol.parse_request ~limits ~known_circuit:Catalog.mem line

let test_request_defaults () =
  match parse {|{"circuit":"carry8"}|} with
  | Ok (Protocol.Run r) ->
      check_s "circuit" "carry8" r.Protocol.circuit;
      check_i "patterns" 256 r.Protocol.patterns;
      check_i "seed" 42 r.Protocol.seed;
      check "engine" true (r.Protocol.engine = `Serial);
      check "drop" true r.Protocol.drop;
      check "deadline capped to max_seconds" true (r.Protocol.deadline_s = 5.0);
      check "max_evals defaults to cap" true (r.Protocol.max_evals = Some 10_000)
  | _ -> Alcotest.fail "expected a Run request"

let test_request_caps () =
  (match parse {|{"circuit":"carry8","deadline_s":100.0,"max_evals":1000000}|} with
  | Ok (Protocol.Run r) ->
      check "deadline capped" true (r.Protocol.deadline_s = 5.0);
      check "evals capped" true (r.Protocol.max_evals = Some 10_000)
  | _ -> Alcotest.fail "expected a Run request");
  match parse {|{"circuit":"carry8","patterns":1001}|} with
  | Error msg -> check "pattern cap named" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "over-cap patterns must be rejected"

let test_request_rejections () =
  let rejected s = check s true (Result.is_error (parse s)) in
  rejected {|{"circuit":"carry8","patterns":-1}|};
  rejected {|{"circuit":"unknown-thing"}|};
  rejected {|{"patterns":10}|};  (* missing circuit *)
  rejected {|{"circuit":"carry8","typo_field":1}|};
  rejected {|{"op":"selfdestruct"}|};
  rejected {|{"circuit":"carry8","engine":"warp"}|};
  rejected {|{"circuit":"carry8","jobs":2}|};  (* jobs without domains engine *)
  rejected {|{"circuit":"carry8","engine":"deductive","crash_sid":0}|};
  rejected {|{"circuit":"carry8","deadline_s":0}|};
  rejected {|{"circuit":"carry8","max_evals":0}|};
  rejected {|{"circuit":"carry8","gates":"all"}|};
  rejected {|[1,2,3]|};
  rejected {|"just a string"|}

(* --- End-to-end: the robustness contract ----------------------------------------- *)

(* A valid job's coverage equals a standalone engine run bit-for-bit. *)
let test_server_matches_standalone () =
  let _, resps, _ =
    run_server ~config:small_config
      [ {|{"circuit":"carry8","patterns":64,"seed":42,"id":"x"}|} ]
  in
  check_i "one response" 1 (List.length resps);
  let r = response_for 1 resps in
  check_s "status" "ok" (status r);
  let cov = match field "coverage" r with Json.Float f -> f | Json.Int n -> float_of_int n | _ -> nan in
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let prng = Dynmos_util.Prng.create 42 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:64
  in
  let s = Faultsim.run_serial u pats in
  Alcotest.(check (float 0.0)) "coverage identical to standalone" (Faultsim.coverage s) cov

(* A crash-injected request and a past-deadline request are reported
   partial; a subsequent valid request on the same server instance is
   untouched. *)
let test_crash_and_deadline_isolated () =
  let _, resps, _ =
    run_server ~config:small_config
      [
        {|{"circuit":"carry8","patterns":64,"crash_sid":0,"id":"crash"}|};
        {|{"circuit":"rand20","patterns":512,"deadline_s":1e-9,"id":"late"}|};
        {|{"circuit":"carry8","patterns":64,"id":"after"}|};
      ]
  in
  check_i "three responses" 3 (List.length resps);
  let crash = response_for 1 resps in
  check_s "crash partial" "partial" (status crash);
  (match field "cause" crash with
  | Json.String c -> check_s "crash cause" "site_failures" c
  | _ -> Alcotest.fail "missing cause");
  (match field "failed_sites" crash with
  | Json.List [ Json.Obj fields ] ->
      check "failed site 0" true (List.assoc_opt "sid" fields = Some (Json.Int 0))
  | _ -> Alcotest.fail "expected one failed site");
  let late = response_for 2 resps in
  check_s "deadline partial" "partial" (status late);
  (match field "cause" late with
  | Json.String c -> check_s "deadline cause" "deadline" c
  | _ -> Alcotest.fail "missing cause");
  let after = response_for 3 resps in
  check_s "subsequent request ok" "ok" (status after);
  let cov =
    match field "coverage" after with
    | Json.Float f -> f
    | Json.Int n -> float_of_int n
    | _ -> nan
  in
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let prng = Dynmos_util.Prng.create 42 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:64
  in
  Alcotest.(check (float 0.0)) "coverage unaffected by earlier crashes"
    (Faultsim.coverage (Faultsim.run_serial u pats))
    cov

(* Queue overflow answers "overloaded" instead of queuing without bound. *)
let test_overload () =
  let slow = {|{"circuit":"carry8","patterns":4096,"algo":"full","drop":false}|} in
  let config = { small_config with Server.queue_capacity = 1 } in
  let _, resps, _ = run_server ~config [ slow; slow; slow; slow; slow; slow ] in
  check_i "every line answered" 6 (List.length resps);
  let counts st = List.length (List.filter (fun r -> status r = st) resps) in
  check "some overloaded" true (counts "overloaded" >= 1);
  check "some completed" true (counts "ok" >= 1);
  check_i "nothing lost" 6 (counts "ok" + counts "partial" + counts "overloaded" + counts "error")

(* The global eval budget rejects work once spent. *)
let test_global_budget () =
  let config = { small_config with Server.global_max_evals = Some 500 } in
  let job = {|{"circuit":"rand20","patterns":512,"drop":false}|} in
  let _, resps, _ = run_server ~config [ job; job ] in
  check_i "two responses" 2 (List.length resps);
  check_s "first stopped by budget" "partial" (status (response_for 1 resps));
  let second = response_for 2 resps in
  check_s "second rejected" "error" (status second);
  match field "error" second with
  | Json.String msg -> check "rejection named" true (String.length msg > 0)
  | _ -> Alcotest.fail "missing error"

(* Drain: once the flag flips, reading stops, admitted work finishes and
   the loop reports `Drained.  The last read line may race the queue
   closing and be answered "draining" — either way it gets exactly one
   response. *)
let test_drain () =
  let job = {|{"circuit":"carry8","patterns":64}|} in
  let stop, resps, read =
    run_server ~config:small_config ~drain:(fun read -> read >= 2) [ job; job; job; job ]
  in
  check "drained" true (stop = `Drained);
  check "stopped reading" true (read < 4);
  check_i "every read line answered" read (List.length resps);
  check_s "first admitted job finished" "ok" (status (response_for 1 resps));
  List.iter
    (fun r -> check "finished or refused, never dropped" true
        (status r = "ok" || status r = "draining"))
    resps

(* Stats and ping answer immediately with server-global counters. *)
let test_stats_and_ping () =
  let _, resps, _ =
    run_server ~config:small_config
      [
        {|{"op":"ping","id":9}|};
        {|{"circuit":"carry8","patterns":64}|};
        {|not json|};
        {|{"op":"stats"}|};
      ]
  in
  check_i "four responses" 4 (List.length resps);
  check_s "pong" "pong" (status (response_for 1 resps));
  check "ping echoes id" true (field "id" (response_for 1 resps) = Json.Int 9);
  check_s "bad line is error" "error" (status (response_for 3 resps));
  let stats = response_for 4 resps in
  check_s "stats" "stats" (status stats);
  (match field "lines" stats with
  | Json.Int n -> check "lines counted" true (n >= 3)
  | _ -> Alcotest.fail "missing lines");
  match field "rejected_invalid" stats with
  | Json.Int n -> check "invalid counted" true (n >= 1)
  | _ -> Alcotest.fail "missing rejected_invalid"

(* Gate restriction: a sub-universe request matches the full run on the
   corresponding sites, and bad gate ids are named errors. *)
let test_gates_restriction () =
  let _, resps, _ =
    run_server ~config:small_config
      [
        {|{"circuit":"carry8","patterns":64,"gates":[0,1,2]}|};
        {|{"circuit":"carry8","gates":[0,99]}|};
        {|{"circuit":"carry8","gates":[1,1]}|};
      ]
  in
  let ok = response_for 1 resps in
  check_s "restricted run ok" "ok" (status ok);
  let detected = match field "detected" ok with Json.Int n -> n | _ -> -1 in
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let ru = Faultsim.restrict_universe u ~gates:[ 0; 1; 2 ] in
  let prng = Dynmos_util.Prng.create 42 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:64
  in
  check_i "restricted detections match library run" (Faultsim.n_detected (Faultsim.run_serial ru pats)) detected;
  check_s "out-of-range gate id" "error" (status (response_for 2 resps));
  check_s "duplicate gate id" "error" (status (response_for 3 resps))

(* The obs ring stays bounded however many requests are served. *)
let test_bounded_events () =
  let config = { small_config with Server.events_capacity = 8 } in
  let job = {|{"circuit":"carry8","patterns":8}|} in
  let _, resps, _ = run_server ~config (List.init 20 (fun _ -> job) @ [ {|{"op":"stats"}|} ]) in
  let stats = response_for 21 resps in
  (match field "events_buffered" stats with
  | Json.Int n -> check "ring bounded" true (n <= 8)
  | _ -> Alcotest.fail "missing events_buffered");
  match field "events_total" stats with
  | Json.Int n -> check "totals keep counting" true (n > 8)
  | _ -> Alcotest.fail "missing events_total"

(* --- QCheck fuzz: arbitrary bytes never crash the loop --------------------------- *)

(* Byte-line generator biased toward the nasty cases: truncated JSON,
   valid-but-wrong schemas, huge numbers, NULs, deep nesting, plus pure
   random bytes. *)
let fuzz_line =
  let open QCheck2.Gen in
  oneof
    [
      (* arbitrary bytes (newline-free: the reader splits on newlines) *)
      map
        (fun s -> String.map (fun c -> if c = '\n' then ' ' else c) s)
        (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 80));
      (* truncated / mutated valid request *)
      (let base = {|{"circuit":"carry8","patterns":16,"seed":7}|} in
       map (fun n -> String.sub base 0 (min n (String.length base))) (int_range 0 43));
      (* structurally valid, semantically hostile *)
      oneofl
        [
          {|{"circuit":"carry8","patterns":99999999999999999999999999}|};
          {|{"circuit":"carry8","patterns":1e308}|};
          {|{"circuit":"carry8","seed":null}|};
          {|{"circuit":"carry8","gates":[-1]}|};
          {|{"circuit":"carry8","crash_sid":123456}|};
          {|{"op":"run"}|};
          {|{"op":"stats","junk":1}|};
          {|null|};
          {|0|};
          "\x00\x01\x02";
          String.make 200 '[';
          String.make 200 '{';
          {|{"circuit":"\ud800"}|};
        ];
    ]

let qcheck_fuzz_serve =
  QCheck2.Test.make ~name:"serve loop: one response per line, never a crash" ~count:60
    QCheck2.Gen.(list_size (int_range 0 12) fuzz_line)
    (fun lines ->
      let config =
        { Server.default_config with Server.max_patterns = 64; max_seconds = 5.0 }
      in
      let _, resps, read = run_server ~config lines in
      (* every read line answered exactly once... *)
      if read <> List.length lines then QCheck2.Test.fail_report "reader dropped lines";
      if List.length resps <> List.length lines then
        QCheck2.Test.fail_reportf "%d lines but %d responses" (List.length lines)
          (List.length resps);
      (* ...with valid JSON carrying the right line numbers *)
      let lines_answered =
        List.map
          (fun r ->
            match Json.member "line" (parse_ok r) with
            | Some (Json.Int n) -> n
            | _ -> QCheck2.Test.fail_report "response lacks a line number")
          resps
      in
      let sorted = List.sort compare lines_answered in
      if sorted <> List.init (List.length lines) (fun i -> i + 1) then
        QCheck2.Test.fail_report "line numbers are not exactly 1..n";
      true)

(* --- Suite ------------------------------------------------------------------------ *)

let () =
  Alcotest.run "dynmos server"
    [
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_request_defaults;
          Alcotest.test_case "caps applied" `Quick test_request_caps;
          Alcotest.test_case "rejections" `Quick test_request_rejections;
        ] );
      ( "serve",
        [
          Alcotest.test_case "matches standalone run" `Quick test_server_matches_standalone;
          Alcotest.test_case "crash and deadline isolated" `Quick
            test_crash_and_deadline_isolated;
          Alcotest.test_case "overload backpressure" `Quick test_overload;
          Alcotest.test_case "global budget" `Quick test_global_budget;
          Alcotest.test_case "graceful drain" `Quick test_drain;
          Alcotest.test_case "stats and ping" `Quick test_stats_and_ping;
          Alcotest.test_case "gate restriction" `Quick test_gates_restriction;
          Alcotest.test_case "bounded event ring" `Quick test_bounded_events;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_fuzz_serve ] );
    ]
