open Dynmos_server
open Dynmos_faultsim
open Dynmos_circuits
module Obs = Dynmos_obs.Obs

(* Tests for the serve loop: the strict JSON parser, request validation,
   and the end-to-end robustness contract — a request can be malformed,
   crashing, over budget or rejected for overload, and the loop answers
   every line exactly once and keeps serving. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* --- Helpers ------------------------------------------------------------------ *)

(* One client session against an existing server, over an in-memory line
   list; returns (stop, responses, lines_read). *)
let run_on t ?drain lines =
  let remaining = ref lines in
  let read = ref 0 in
  let input () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        incr read;
        Some l
  in
  let m = Mutex.create () in
  let out = ref [] in
  let output s =
    Mutex.lock m;
    out := s :: !out;
    Mutex.unlock m
  in
  let drain = match drain with None -> None | Some f -> Some (fun () -> f !read) in
  let stop = Server.serve t ?drain ~input ~output () in
  (stop, List.rev !out, !read)

(* Create a server, run one session, and always join its executor
   domains — domains are a bounded resource and the QCheck fuzz creates
   dozens of servers. *)
let run_server ?config ?drain lines =
  let t = Server.create ?config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) (fun () -> run_on t ?drain lines)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "response is not valid JSON: %s (%s)" s e

let field name resp =
  match Json.member name (parse_ok resp) with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name resp

let status resp = match field "status" resp with Json.String s -> s | _ -> "?"
let line_of resp = match field "line" resp with Json.Int n -> n | _ -> -1

(* The response answering input line [n]. *)
let response_for n resps =
  match List.find_opt (fun r -> line_of r = n) resps with
  | Some r -> r
  | None -> Alcotest.failf "no response for line %d" n

(* One executor keeps the classic single-client tests deterministic
   (jobs execute in admission order, so overload/budget assertions are
   exact); the concurrency tests override it. *)
let small_config =
  {
    Server.default_config with
    Server.max_patterns = 4096;
    max_seconds = 30.0;
    executors = 1;
  }

(* --- JSON parser ---------------------------------------------------------------- *)

let test_json_values () =
  let ok s v = Alcotest.(check bool) s true (Json.parse s = Ok v) in
  ok "null" Json.Null;
  ok "true" (Json.Bool true);
  ok "42" (Json.Int 42);
  ok "-17" (Json.Int (-17));
  ok "1.5" (Json.Float 1.5);
  ok "1e3" (Json.Float 1000.0);
  ok "\"a\"" (Json.String "a");
  ok "[1,2]" (Json.List [ Json.Int 1; Json.Int 2 ]);
  ok "{\"a\":1}" (Json.Obj [ ("a", Json.Int 1) ]);
  ok " { \"a\" : [ true , null ] } "
    (Json.Obj [ ("a", Json.List [ Json.Bool true; Json.Null ]) ]);
  (* escapes, including a surrogate pair *)
  check "escape" true
    (Json.parse "\"a\\n\\u0041\\ud83d\\ude00\"" = Ok (Json.String "a\nA\xf0\x9f\x98\x80"))

let test_json_errors () =
  let bad s = check s true (Result.is_error (Json.parse s)) in
  bad "";
  bad "{";
  bad "[1,";
  bad "{\"a\":}";
  bad "tru";
  bad "01";
  bad "1.";
  bad "- 1";
  bad "\"unterminated";
  bad "\"\x00\"";  (* raw NUL in a string *)
  bad "\"\\ud83d\"";  (* lone high surrogate *)
  bad "\"\\udc00\"";  (* lone low surrogate *)
  bad "{\"a\":1,\"a\":2}";  (* duplicate key *)
  bad "{} extra";
  bad "nullx";
  (* deep nesting must be a clean error, not a stack overflow *)
  bad (String.make 100000 '[');
  (* huge integer literals degrade to floats; infinity itself parses *)
  check "huge int becomes float" true
    (match Json.parse (String.make 400 '9') with Ok (Json.Float f) -> f = infinity | _ -> false)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("n", Json.Int (-3));
        ("f", Json.Float 0.25);
        ("l", Json.List [ Json.Null; Json.Bool false ]);
        ("o", Json.Obj [ ("k", Json.Int 1) ]);
      ]
  in
  check "print/parse round-trip" true (Json.parse (Json.to_string v) = Ok v)

(* --- Request validation --------------------------------------------------------- *)

let limits =
  { Protocol.max_patterns = 1000; max_seconds = 5.0; max_request_evals = Some 10_000 }

let parse line = Protocol.parse_request ~limits ~known_circuit:Catalog.mem line

let test_request_defaults () =
  match parse {|{"circuit":"carry8"}|} with
  | Ok (Protocol.Run r) ->
      check_s "circuit" "carry8" r.Protocol.circuit;
      check_i "patterns" 256 r.Protocol.patterns;
      check_i "seed" 42 r.Protocol.seed;
      check "engine" true (r.Protocol.engine = `Serial);
      check "drop" true r.Protocol.drop;
      check "deadline capped to max_seconds" true (r.Protocol.deadline_s = 5.0);
      check "max_evals defaults to cap" true (r.Protocol.max_evals = Some 10_000)
  | _ -> Alcotest.fail "expected a Run request"

let test_request_caps () =
  (match parse {|{"circuit":"carry8","deadline_s":100.0,"max_evals":1000000}|} with
  | Ok (Protocol.Run r) ->
      check "deadline capped" true (r.Protocol.deadline_s = 5.0);
      check "evals capped" true (r.Protocol.max_evals = Some 10_000)
  | _ -> Alcotest.fail "expected a Run request");
  match parse {|{"circuit":"carry8","patterns":1001}|} with
  | Error msg -> check "pattern cap named" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "over-cap patterns must be rejected"

let test_request_rejections () =
  let rejected s = check s true (Result.is_error (parse s)) in
  rejected {|{"circuit":"carry8","patterns":-1}|};
  rejected {|{"circuit":"unknown-thing"}|};
  rejected {|{"patterns":10}|};  (* missing circuit *)
  rejected {|{"circuit":"carry8","typo_field":1}|};
  rejected {|{"op":"selfdestruct"}|};
  rejected {|{"circuit":"carry8","engine":"warp"}|};
  rejected {|{"circuit":"carry8","jobs":2}|};  (* jobs without domains engine *)
  rejected {|{"circuit":"carry8","engine":"deductive","crash_sid":0}|};
  rejected {|{"circuit":"carry8","deadline_s":0}|};
  rejected {|{"circuit":"carry8","max_evals":0}|};
  rejected {|{"circuit":"carry8","gates":"all"}|};
  rejected {|[1,2,3]|};
  rejected {|"just a string"|}

(* The ppsfp engine's [group] knob: accepted (and optional) for ppsfp,
   rejected out of range, for every other engine, and alongside
   crash_sid (joint group propagation cannot isolate one site). *)
let test_request_ppsfp () =
  (match parse {|{"circuit":"carry8","engine":"ppsfp","group":64}|} with
  | Ok (Protocol.Run r) ->
      check "engine ppsfp" true (r.Protocol.engine = `Ppsfp);
      check "group carried" true (r.Protocol.group = Some 64)
  | _ -> Alcotest.fail "expected a Run request");
  (match parse {|{"circuit":"carry8","engine":"ppsfp"}|} with
  | Ok (Protocol.Run r) -> check "group optional" true (r.Protocol.group = None)
  | _ -> Alcotest.fail "expected a Run request");
  let rejected s = check s true (Result.is_error (parse s)) in
  rejected {|{"circuit":"carry8","group":8}|};  (* group without ppsfp *)
  rejected {|{"circuit":"carry8","engine":"parallel","group":8}|};
  rejected {|{"circuit":"carry8","engine":"ppsfp","group":0}|};
  rejected {|{"circuit":"carry8","engine":"ppsfp","group":1025}|};
  rejected {|{"circuit":"carry8","engine":"ppsfp","crash_sid":0}|}

(* End-to-end: a ppsfp job through the server produces the bit-parallel
   engine's coverage. *)
let test_server_ppsfp_engine () =
  let _, resps, _ =
    run_server ~config:small_config
      [
        {|{"circuit":"rand20","patterns":128,"seed":7,"engine":"ppsfp","group":8,"id":"p"}|};
        {|{"circuit":"rand20","patterns":128,"seed":7,"engine":"parallel","id":"q"}|};
      ]
  in
  check_i "two responses" 2 (List.length resps);
  let p = response_for 1 resps and q = response_for 2 resps in
  check_s "ppsfp ok" "ok" (status p);
  check "coverage identical to bit-parallel" true
    (field "coverage" p = field "coverage" q);
  check "detected identical to bit-parallel" true
    (field "detected" p = field "detected" q)

(* --- End-to-end: the robustness contract ----------------------------------------- *)

(* A valid job's coverage equals a standalone engine run bit-for-bit. *)
let test_server_matches_standalone () =
  let _, resps, _ =
    run_server ~config:small_config
      [ {|{"circuit":"carry8","patterns":64,"seed":42,"id":"x"}|} ]
  in
  check_i "one response" 1 (List.length resps);
  let r = response_for 1 resps in
  check_s "status" "ok" (status r);
  let cov = match field "coverage" r with Json.Float f -> f | Json.Int n -> float_of_int n | _ -> nan in
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let prng = Dynmos_util.Prng.create 42 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:64
  in
  let s = Faultsim.run_serial u pats in
  Alcotest.(check (float 0.0)) "coverage identical to standalone" (Faultsim.coverage s) cov

(* A crash-injected request and a past-deadline request are reported
   partial; a subsequent valid request on the same server instance is
   untouched. *)
let test_crash_and_deadline_isolated () =
  let _, resps, _ =
    run_server ~config:small_config
      [
        {|{"circuit":"carry8","patterns":64,"crash_sid":0,"id":"crash"}|};
        {|{"circuit":"rand20","patterns":512,"deadline_s":1e-9,"id":"late"}|};
        {|{"circuit":"carry8","patterns":64,"id":"after"}|};
      ]
  in
  check_i "three responses" 3 (List.length resps);
  let crash = response_for 1 resps in
  check_s "crash partial" "partial" (status crash);
  (match field "cause" crash with
  | Json.String c -> check_s "crash cause" "site_failures" c
  | _ -> Alcotest.fail "missing cause");
  (match field "failed_sites" crash with
  | Json.List [ Json.Obj fields ] ->
      check "failed site 0" true (List.assoc_opt "sid" fields = Some (Json.Int 0))
  | _ -> Alcotest.fail "expected one failed site");
  let late = response_for 2 resps in
  check_s "deadline partial" "partial" (status late);
  (match field "cause" late with
  | Json.String c -> check_s "deadline cause" "deadline" c
  | _ -> Alcotest.fail "missing cause");
  let after = response_for 3 resps in
  check_s "subsequent request ok" "ok" (status after);
  let cov =
    match field "coverage" after with
    | Json.Float f -> f
    | Json.Int n -> float_of_int n
    | _ -> nan
  in
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let prng = Dynmos_util.Prng.create 42 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:64
  in
  Alcotest.(check (float 0.0)) "coverage unaffected by earlier crashes"
    (Faultsim.coverage (Faultsim.run_serial u pats))
    cov

(* Queue overflow answers "overloaded" instead of queuing without bound. *)
let test_overload () =
  let slow = {|{"circuit":"carry8","patterns":4096,"algo":"full","drop":false}|} in
  let config = { small_config with Server.queue_capacity = 1 } in
  let _, resps, _ = run_server ~config [ slow; slow; slow; slow; slow; slow ] in
  check_i "every line answered" 6 (List.length resps);
  let counts st = List.length (List.filter (fun r -> status r = st) resps) in
  check "some overloaded" true (counts "overloaded" >= 1);
  check "some completed" true (counts "ok" >= 1);
  check_i "nothing lost" 6 (counts "ok" + counts "partial" + counts "overloaded" + counts "error")

(* The global eval budget rejects work once spent. *)
let test_global_budget () =
  let config = { small_config with Server.global_max_evals = Some 500 } in
  let job = {|{"circuit":"rand20","patterns":512,"drop":false}|} in
  let _, resps, _ = run_server ~config [ job; job ] in
  check_i "two responses" 2 (List.length resps);
  check_s "first stopped by budget" "partial" (status (response_for 1 resps));
  let second = response_for 2 resps in
  check_s "second rejected" "error" (status second);
  match field "error" second with
  | Json.String msg -> check "rejection named" true (String.length msg > 0)
  | _ -> Alcotest.fail "missing error"

(* Drain: once the flag flips, reading stops, admitted work finishes and
   the loop reports `Drained.  The last read line may race the queue
   closing and be answered "draining" — either way it gets exactly one
   response. *)
let test_drain () =
  let job = {|{"circuit":"carry8","patterns":64}|} in
  let stop, resps, read =
    run_server ~config:small_config ~drain:(fun read -> read >= 2) [ job; job; job; job ]
  in
  check "drained" true (stop = `Drained);
  check "stopped reading" true (read < 4);
  check_i "every read line answered" read (List.length resps);
  check_s "first admitted job finished" "ok" (status (response_for 1 resps));
  List.iter
    (fun r -> check "finished or refused, never dropped" true
        (status r = "ok" || status r = "draining"))
    resps

(* Stats and ping answer immediately with server-global counters. *)
let test_stats_and_ping () =
  let _, resps, _ =
    run_server ~config:small_config
      [
        {|{"op":"ping","id":9}|};
        {|{"circuit":"carry8","patterns":64}|};
        {|not json|};
        {|{"op":"stats"}|};
      ]
  in
  check_i "four responses" 4 (List.length resps);
  check_s "pong" "pong" (status (response_for 1 resps));
  check "ping echoes id" true (field "id" (response_for 1 resps) = Json.Int 9);
  check_s "bad line is error" "error" (status (response_for 3 resps));
  let stats = response_for 4 resps in
  check_s "stats" "stats" (status stats);
  (match field "lines" stats with
  | Json.Int n -> check "lines counted" true (n >= 3)
  | _ -> Alcotest.fail "missing lines");
  match field "rejected_invalid" stats with
  | Json.Int n -> check "invalid counted" true (n >= 1)
  | _ -> Alcotest.fail "missing rejected_invalid"

(* Gate restriction: a sub-universe request matches the full run on the
   corresponding sites, and bad gate ids are named errors. *)
let test_gates_restriction () =
  let _, resps, _ =
    run_server ~config:small_config
      [
        {|{"circuit":"carry8","patterns":64,"gates":[0,1,2]}|};
        {|{"circuit":"carry8","gates":[0,99]}|};
        {|{"circuit":"carry8","gates":[1,1]}|};
      ]
  in
  let ok = response_for 1 resps in
  check_s "restricted run ok" "ok" (status ok);
  let detected = match field "detected" ok with Json.Int n -> n | _ -> -1 in
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let ru = Faultsim.restrict_universe u ~gates:[ 0; 1; 2 ] in
  let prng = Dynmos_util.Prng.create 42 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:64
  in
  check_i "restricted detections match library run" (Faultsim.n_detected (Faultsim.run_serial ru pats)) detected;
  check_s "out-of-range gate id" "error" (status (response_for 2 resps));
  check_s "duplicate gate id" "error" (status (response_for 3 resps))

(* The obs ring stays bounded however many requests are served. *)
let test_bounded_events () =
  let config = { small_config with Server.events_capacity = 8 } in
  let job = {|{"circuit":"carry8","patterns":8}|} in
  let _, resps, _ = run_server ~config (List.init 20 (fun _ -> job) @ [ {|{"op":"stats"}|} ]) in
  let stats = response_for 21 resps in
  (match field "events_buffered" stats with
  | Json.Int n -> check "ring bounded" true (n <= 8)
  | _ -> Alcotest.fail "missing events_buffered");
  match field "events_total" stats with
  | Json.Int n -> check "totals keep counting" true (n > 8)
  | _ -> Alcotest.fail "missing events_total"

(* A circuit that passes admission but fails catalog lookup must yield a
   structured error response — the old code [failwith]ed inside the
   executor, killing it and hanging every later request.  The lookup
   predicate split on [create] exists exactly to drive this path. *)
let test_lookup_failure_isolated () =
  let t = Server.create ~config:small_config ~known_circuit:(fun _ -> true) () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
  let _, resps, _ =
    run_on t
      [
        {|{"circuit":"ghost-circuit","patterns":16,"id":"g"}|};
        {|{"circuit":"carry8","patterns":16,"id":"ok"}|};
      ]
  in
  check_i "both lines answered" 2 (List.length resps);
  let ghost = response_for 1 resps in
  check_s "lookup failure is an error response" "error" (status ghost);
  (match field "error" ghost with
  | Json.String msg ->
      check "error names the lookup" true
        (String.length msg >= 14 && String.sub msg 0 14 = "circuit lookup")
  | _ -> Alcotest.fail "missing error");
  check_s "executor survives to serve the next request" "ok"
    (status (response_for 2 resps))

(* Idle executors park on a condition variable: a 0.35 s gap between two
   jobs must cost O(jobs) wakeups, not O(gap / poll-interval) — the old
   2 ms sleep-poll would log ~175 iterations here. *)
let test_idle_no_busy_wait () =
  let t = Server.create ~config:small_config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
  let job = {|{"circuit":"carry8","patterns":16}|} in
  let step = ref 0 in
  let input () =
    incr step;
    match !step with
    | 1 -> Some job
    | 2 ->
        Unix.sleepf 0.35;
        Some job
    | _ -> None
  in
  let m = Mutex.create () in
  let out = ref [] in
  let output s =
    Mutex.lock m;
    out := s :: !out;
    Mutex.unlock m
  in
  let stop = Server.serve t ~input ~output () in
  check "eof" true (stop = `Eof);
  check_i "two responses" 2 (List.length !out);
  let w = Server.exec_wakeups t in
  check (Printf.sprintf "executors idle without spinning (%d wakeups)" w) true (w <= 10)

(* The scheduler itself: per-client FIFO with round-robin across
   clients, cancellation drops queued work, a raising task is counted
   and survived. *)
let test_scheduler () =
  let module S = Parallel_exec.Scheduler in
  let s = S.create ~num_domains:1 () in
  Fun.protect ~finally:(fun () -> S.shutdown s) @@ fun () ->
  let submit client task =
    match S.submit s ~client task with
    | `Ok _ -> ()
    | `Full | `Closed -> Alcotest.fail "submit refused"
  in
  let order_m = Mutex.create () in
  let order = ref [] in
  let record name =
    Mutex.lock order_m;
    order := name :: !order;
    Mutex.unlock order_m
  in
  (* hold the single worker inside a task so submissions below queue up *)
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let gate_open = ref false in
  let started = ref false in
  submit 0 (fun () ->
      Mutex.lock gate_m;
      started := true;
      Condition.broadcast gate_c;
      while not !gate_open do
        Condition.wait gate_c gate_m
      done;
      Mutex.unlock gate_m);
  Mutex.lock gate_m;
  while not !started do
    Condition.wait gate_c gate_m
  done;
  Mutex.unlock gate_m;
  List.iter
    (fun (c, name) -> submit c (fun () -> record name))
    [ (1, "A1"); (1, "A2"); (1, "A3"); (2, "B1") ];
  submit 5 (fun () -> record "C1");
  check_i "cancel drops the queued task" 1 (S.cancel s ~client:5);
  check_i "cancel of an unknown client drops nothing" 0 (S.cancel s ~client:99);
  Mutex.lock gate_m;
  gate_open := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  S.wait_idle s;
  check "round-robin across clients, FIFO within one" true
    (List.rev !order = [ "A1"; "B1"; "A2"; "A3" ]);
  check_i "no crashes yet" 0 (S.crashes s);
  submit 0 (fun () -> failwith "boom");
  S.wait_idle s;
  check_i "crash counted" 1 (S.crashes s);
  submit 0 (fun () -> record "after");
  S.wait_idle s;
  check "pool survives a crashing task" true (List.mem "after" !order)

(* N clients served concurrently against one server: each gets exactly
   its own responses, numbered by its own line counter, with the same
   coverage a standalone run produces. *)
let test_concurrent_clients () =
  let config = { small_config with Server.executors = 2 } in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
  let job i k =
    (* distinct seeds per line defeat the result cache so every job is
       real executor work; same seed across clients checks determinism *)
    Printf.sprintf {|{"circuit":"carry8","patterns":64,"seed":%d,"id":"c%d-%d"}|} (100 + k)
      i k
  in
  let n_clients = 3 in
  let results = Array.make n_clients (`Eof, [], 0) in
  let threads =
    List.init n_clients (fun i ->
        Thread.create (fun () -> results.(i) <- run_on t [ job i 0; job i 1; job i 2 ]) ())
  in
  List.iter Thread.join threads;
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let cov_of_seed seed =
    let prng = Dynmos_util.Prng.create seed in
    let pats =
      Faultsim.random_patterns prng
        ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
        ~count:64
    in
    Faultsim.coverage (Faultsim.run_serial u pats)
  in
  Array.iter
    (fun (stop, resps, read) ->
      check "client saw eof" true (stop = `Eof);
      check_i "client read all its lines" 3 read;
      check_i "one response per line" 3 (List.length resps);
      check "numbered by the client's own counter" true
        (List.sort compare (List.map line_of resps) = [ 1; 2; 3 ]);
      List.iter
        (fun r ->
          check_s "ok" "ok" (status r);
          let seed_cov =
            match line_of r with 1 -> cov_of_seed 100 | 2 -> cov_of_seed 101 | _ -> cov_of_seed 102
          in
          let cov =
            match field "coverage" r with
            | Json.Float f -> f
            | Json.Int n -> float_of_int n
            | _ -> nan
          in
          Alcotest.(check (float 0.0)) "coverage identical to standalone" seed_cov cov)
        resps)
    results

(* The content-addressed result cache: a repeat of a completed run is
   answered bit-identically — the response line differs only in the
   [cached] flag — with zero new gate evaluations charged anywhere. *)
let test_result_cache () =
  let t = Server.create ~config:small_config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
  let job = {|{"circuit":"rand20","patterns":128,"seed":7,"engine":"parallel","id":"j"}|} in
  let stats () =
    let _, resps, _ = run_on t [ {|{"op":"stats"}|} ] in
    response_for 1 resps
  in
  let int_field name r =
    match field name r with Json.Int n -> n | _ -> Alcotest.failf "field %s not an int" name
  in
  let _, r1, _ = run_on t [ job ] in
  let s1 = stats () in
  let _, r2, _ = run_on t [ job ] in
  let s2 = stats () in
  let a = response_for 1 r1 in
  let b = response_for 1 r2 in
  check_s "first run ok" "ok" (status a);
  check_s "repeat ok" "ok" (status b);
  check "first run not cached" true (field "cached" a = Json.Bool false);
  check "repeat served from cache" true (field "cached" b = Json.Bool true);
  let strip r =
    match parse_ok r with
    | Json.Obj fields -> List.filter (fun (k, _) -> k <> "cached") fields
    | _ -> Alcotest.fail "response is not an object"
  in
  check "responses identical except the cached flag" true (strip a = strip b);
  check_i "no hits before the repeat" 0 (int_field "cache_hits" s1);
  check_i "the repeat hit the cache" 1 (int_field "cache_hits" s2);
  check_i "a cache hit performs zero new gate evaluations"
    (int_field "global_evals_used" s1)
    (int_field "global_evals_used" s2)

(* stream_every: progress lines flow while the job runs; they are not
   the response — exactly one terminal line still answers the request,
   with the standalone-identical result. *)
let test_streaming_progress () =
  let _, resps, _ =
    run_server ~config:small_config
      [ {|{"circuit":"carry8","patterns":64,"drop":false,"stream_every":16,"id":"s"}|} ]
  in
  let progress = List.filter (fun r -> status r = "progress") resps in
  let terminal = List.filter (fun r -> status r <> "progress") resps in
  check "progress lines streamed" true (List.length progress >= 1);
  check_i "exactly one terminal response" 1 (List.length terminal);
  let t = List.hd terminal in
  check_s "terminal ok" "ok" (status t);
  List.iter
    (fun p ->
      check_i "progress carries the request's line number" 1 (line_of p);
      check "progress echoes the id" true (field "id" p = Json.String "s");
      match (field "units_done" p, field "units_total" p) with
      | Json.Int d, Json.Int tot -> check "progress within range" true (d >= 1 && d <= tot)
      | _ -> Alcotest.fail "progress lacks unit counts")
    progress;
  let nl = match Catalog.find "carry8" with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let prng = Dynmos_util.Prng.create 42 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:64
  in
  let cov =
    match field "coverage" t with
    | Json.Float f -> f
    | Json.Int n -> float_of_int n
    | _ -> nan
  in
  Alcotest.(check (float 0.0)) "streamed run matches standalone"
    (Faultsim.coverage (Faultsim.run_serial ~drop:false u pats))
    cov

(* --- QCheck fuzz: arbitrary bytes never crash the loop --------------------------- *)

(* Byte-line generator biased toward the nasty cases: truncated JSON,
   valid-but-wrong schemas, huge numbers, NULs, deep nesting, plus pure
   random bytes. *)
let fuzz_line =
  let open QCheck2.Gen in
  oneof
    [
      (* arbitrary bytes (newline-free: the reader splits on newlines) *)
      map
        (fun s -> String.map (fun c -> if c = '\n' then ' ' else c) s)
        (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 80));
      (* truncated / mutated valid request *)
      (let base = {|{"circuit":"carry8","patterns":16,"seed":7}|} in
       map (fun n -> String.sub base 0 (min n (String.length base))) (int_range 0 43));
      (* structurally valid, semantically hostile *)
      oneofl
        [
          {|{"circuit":"carry8","patterns":99999999999999999999999999}|};
          {|{"circuit":"carry8","patterns":1e308}|};
          {|{"circuit":"carry8","seed":null}|};
          {|{"circuit":"carry8","gates":[-1]}|};
          {|{"circuit":"carry8","crash_sid":123456}|};
          {|{"op":"run"}|};
          {|{"op":"stats","junk":1}|};
          {|null|};
          {|0|};
          "\x00\x01\x02";
          String.make 200 '[';
          String.make 200 '{';
          {|{"circuit":"\ud800"}|};
        ];
    ]

let qcheck_fuzz_serve =
  QCheck2.Test.make ~name:"serve loop: one response per line, never a crash" ~count:60
    QCheck2.Gen.(list_size (int_range 0 12) fuzz_line)
    (fun lines ->
      let config =
        { Server.default_config with Server.max_patterns = 64; max_seconds = 5.0 }
      in
      let _, resps, read = run_server ~config lines in
      (* every read line answered exactly once... *)
      if read <> List.length lines then QCheck2.Test.fail_report "reader dropped lines";
      if List.length resps <> List.length lines then
        QCheck2.Test.fail_reportf "%d lines but %d responses" (List.length lines)
          (List.length resps);
      (* ...with valid JSON carrying the right line numbers *)
      let lines_answered =
        List.map
          (fun r ->
            match Json.member "line" (parse_ok r) with
            | Some (Json.Int n) -> n
            | _ -> QCheck2.Test.fail_report "response lacks a line number")
          resps
      in
      let sorted = List.sort compare lines_answered in
      if sorted <> List.init (List.length lines) (fun i -> i + 1) then
        QCheck2.Test.fail_report "line numbers are not exactly 1..n";
      true)

(* The same contract under interleaving: three clients fuzz one server
   concurrently, and each still gets exactly one terminal response per
   line, numbered by its own counter. *)
let qcheck_fuzz_concurrent =
  QCheck2.Test.make
    ~name:"concurrent clients: one terminal response per line per client" ~count:25
    QCheck2.Gen.(list_repeat 3 (list_size (int_range 0 8) fuzz_line))
    (fun client_lines ->
      let config =
        {
          Server.default_config with
          Server.max_patterns = 64;
          max_seconds = 5.0;
          executors = 2;
        }
      in
      let t = Server.create ~config () in
      Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
      let n = List.length client_lines in
      let results = Array.make n ([], 0) in
      let threads =
        List.mapi
          (fun i lines ->
            Thread.create
              (fun () ->
                let _, resps, read = run_on t lines in
                results.(i) <- (resps, read))
              ())
          client_lines
      in
      List.iter Thread.join threads;
      List.iteri
        (fun i lines ->
          let resps, read = results.(i) in
          let terminal = List.filter (fun r -> status r <> "progress") resps in
          if read <> List.length lines then
            QCheck2.Test.fail_reportf "client %d: reader dropped lines" i;
          if List.length terminal <> List.length lines then
            QCheck2.Test.fail_reportf "client %d: %d lines but %d terminal responses" i
              (List.length lines) (List.length terminal);
          let sorted = List.sort compare (List.map line_of terminal) in
          if sorted <> List.init (List.length lines) (fun k -> k + 1) then
            QCheck2.Test.fail_reportf "client %d: line numbers are not exactly 1..n" i)
        client_lines;
      true)

(* --- Robustness: sockets, idle reap, chaos ------------------------------------- *)

(* Run [serve_socket] on its own thread against a fresh temp path and
   hand the caller a connector; always drains and joins. *)
let with_socket_server config f =
  let path = Filename.temp_file "dynmos_sock" ".s" in
  Sys.remove path;
  let t = Server.create ~config () in
  let srv = Thread.create (fun () -> try Server.serve_socket t path with _ -> ()) () in
  let rec wait n =
    if n = 0 then Alcotest.fail "socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain t;
      Thread.join srv;
      Server.shutdown t;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f t connect)

let send fd line =
  let line = line ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line) : int)

let recv_line fd =
  let buf = Bytes.create 4096 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  match Unix.read fd buf 0 4096 with
  | exception Unix.Unix_error _ -> None
  | 0 -> None
  | n -> Some (String.trim (Bytes.sub_string buf 0 n))

(* A client that disconnects before its response is written must cost a
   cancelled session, never the process: the response write hits the
   half-closed socket and, with SIGPIPE ignored, fails as EPIPE into
   the client-gone path.  Without the fix this whole test binary dies
   of SIGPIPE. *)
let test_sigpipe_half_closed_socket () =
  with_socket_server small_config @@ fun _t connect ->
  let fd1 = connect () in
  send fd1 {|{"circuit":"rand20","patterns":512,"drop":false}|};
  Thread.delay 0.05;
  (* vanish while the job is still running *)
  Unix.close fd1;
  (* the server must still be alive and serving new connections *)
  let fd2 = connect () in
  send fd2 {|{"op":"ping"}|};
  (match recv_line fd2 with
  | Some resp -> check_s "server survived the half-closed write" "pong" (status resp)
  | None -> Alcotest.fail "no response from the server after a half-closed write");
  Unix.close fd2

(* A connection that goes silent with nothing in flight is reaped after
   [idle_timeout_s]: our end sees EOF, the counter ticks, and a live
   connection that keeps talking is not reaped. *)
let test_idle_reap () =
  let config = { small_config with Server.idle_timeout_s = Some 0.15 } in
  with_socket_server config @@ fun t connect ->
  let fd = connect () in
  (* send nothing: the reaper must close this connection *)
  (match recv_line fd with
  | None -> ()
  | Some l -> Alcotest.failf "expected EOF from the idle reaper, got %S" l);
  Unix.close fd;
  (match List.assoc "idle_reaps" (Server.stats_line t) with
  | Json.Int n -> check "idle reap counted" true (n >= 1)
  | _ -> Alcotest.fail "stats lack idle_reaps");
  (* a talking client outlives many idle windows *)
  let fd2 = connect () in
  send fd2 {|{"op":"ping"}|};
  (match recv_line fd2 with
  | Some resp -> check_s "active client served" "pong" (status resp)
  | None -> Alcotest.fail "active client was reaped");
  Unix.close fd2

(* Serve under a chaos schedule that kills executor domains and drops
   cache inserts: every request line still gets exactly one terminal
   response, and the watchdog keeps the pool serving. *)
let test_serve_under_chaos () =
  let chaos =
    match Dynmos_chaos.Chaos.of_spec "sched.task=fail_prob:0.5,cache.insert=fail_once,seed=11" with
    | Ok c -> c
    | Error e -> Alcotest.failf "chaos spec: %s" e
  in
  let config =
    { Server.default_config with Server.max_patterns = 64; executors = 2; chaos }
  in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
  let job = {|{"circuit":"carry8","patterns":64}|} in
  let lines = List.init 8 (fun _ -> job) in
  let _, resps, _ = run_on t lines in
  check_i "one terminal response per line" 8 (List.length resps);
  List.iteri (fun i _ -> check_s "every job completed" "ok" (status (response_for (i + 1) resps))) lines;
  check "chaos actually fired" true (Dynmos_chaos.Chaos.injected chaos > 0);
  match List.assoc "exec_respawns" (Server.stats_line t) with
  | Json.Int n -> check "watchdog respawned executors" true (n > 0)
  | _ -> Alcotest.fail "stats lack exec_respawns"

(* --- Suite ------------------------------------------------------------------------ *)

let () =
  Alcotest.run "dynmos server"
    [
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_request_defaults;
          Alcotest.test_case "caps applied" `Quick test_request_caps;
          Alcotest.test_case "rejections" `Quick test_request_rejections;
          Alcotest.test_case "ppsfp group knob" `Quick test_request_ppsfp;
        ] );
      ( "serve",
        [
          Alcotest.test_case "matches standalone run" `Quick test_server_matches_standalone;
          Alcotest.test_case "ppsfp engine end-to-end" `Quick test_server_ppsfp_engine;
          Alcotest.test_case "crash and deadline isolated" `Quick
            test_crash_and_deadline_isolated;
          Alcotest.test_case "overload backpressure" `Quick test_overload;
          Alcotest.test_case "global budget" `Quick test_global_budget;
          Alcotest.test_case "graceful drain" `Quick test_drain;
          Alcotest.test_case "stats and ping" `Quick test_stats_and_ping;
          Alcotest.test_case "gate restriction" `Quick test_gates_restriction;
          Alcotest.test_case "bounded event ring" `Quick test_bounded_events;
          Alcotest.test_case "lookup failure isolated" `Quick test_lookup_failure_isolated;
          Alcotest.test_case "no idle busy-wait" `Quick test_idle_no_busy_wait;
          Alcotest.test_case "streaming progress" `Quick test_streaming_progress;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "scheduler fairness, cancel, crash" `Quick test_scheduler;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "result cache" `Quick test_result_cache;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "sigpipe on a half-closed socket" `Quick
            test_sigpipe_half_closed_socket;
          Alcotest.test_case "idle connections reaped" `Quick test_idle_reap;
          Alcotest.test_case "serve under chaos" `Quick test_serve_under_chaos;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_fuzz_serve;
          QCheck_alcotest.to_alcotest qcheck_fuzz_concurrent;
        ] );
    ]
