(* Frozen coverage fixtures: every engine x algo x drop combination on
   the rand20/rand60 catalog circuits must keep producing bit-identical
   detection results.  [--gen] prints the current lines (used once to
   freeze a baseline into fixtures.expected); the default mode, run
   under [dune runtest] and as a dedicated CI job, recomputes them and
   fails on the first divergence.  Only detection results are frozen —
   coverage, detection counts and a digest of the full first_detection
   array — never cost counters, which are allowed to improve. *)

open Dynmos_circuits
open Dynmos_sim
open Dynmos_faultsim
module Prng = Dynmos_util.Prng

let fixture_count = 256

let circuits = [ ("rand20", 101); ("rand60", 202) ]

let fd_digest (first : int option array) =
  let b = Buffer.create 256 in
  Array.iter
    (function
      | Some p ->
          Buffer.add_string b (string_of_int p);
          Buffer.add_char b ';'
      | None -> Buffer.add_string b "-;")
    first;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Every public engine surface.  The deductive/concurrent baseline rows
   were frozen before those engines took [?algo], so their cone rows pin
   the campaign driver's cone restriction to the pre-refactor results. *)
let engines :
    (string * string * (drop:bool -> Faultsim.universe -> bool array array -> Faultsim.summary))
    list =
  [
    ("serial", "full", fun ~drop u p -> Faultsim.run_serial ~drop ~algo:`Full u p);
    ("serial", "cone", fun ~drop u p -> Faultsim.run_serial ~drop ~algo:`Cone u p);
    ("parallel", "full", fun ~drop u p -> Faultsim.run_parallel ~drop ~algo:`Full u p);
    ("parallel", "cone", fun ~drop u p -> Faultsim.run_parallel ~drop ~algo:`Cone u p);
    ("deductive", "full", fun ~drop u p -> Faultsim.run_deductive ~drop ~algo:`Full u p);
    ("deductive", "cone", fun ~drop u p -> Faultsim.run_deductive ~drop ~algo:`Cone u p);
    ("concurrent", "full", fun ~drop u p -> Faultsim.run_concurrent ~drop ~algo:`Full u p);
    ("concurrent", "cone", fun ~drop u p -> Faultsim.run_concurrent ~drop ~algo:`Cone u p);
    (* Group size 5 deliberately misaligns with the site count so the
       ragged final group and drop-compaction repacking are both pinned. *)
    ("ppsfp", "full", fun ~drop u p -> Faultsim.run_ppsfp ~drop ~algo:`Full ~group:5 u p);
    ("ppsfp", "cone", fun ~drop u p -> Faultsim.run_ppsfp ~drop ~algo:`Cone ~group:5 u p);
    ( "domains-serial",
      "full",
      fun ~drop u p ->
        Faultsim.run_domain_parallel ~drop ~inner:Parallel_exec.Serial ~algo:`Full
          ~num_domains:2 ~min_work_per_domain:0 u p );
    ( "domains-serial",
      "cone",
      fun ~drop u p ->
        Faultsim.run_domain_parallel ~drop ~inner:Parallel_exec.Serial ~algo:`Cone
          ~num_domains:2 ~min_work_per_domain:0 u p );
    ( "domains-bitpar",
      "full",
      fun ~drop u p ->
        Faultsim.run_domain_parallel ~drop ~inner:Parallel_exec.Bit_parallel ~algo:`Full
          ~num_domains:2 ~min_work_per_domain:0 u p );
    ( "domains-bitpar",
      "cone",
      fun ~drop u p ->
        Faultsim.run_domain_parallel ~drop ~inner:Parallel_exec.Bit_parallel ~algo:`Cone
          ~num_domains:2 ~min_work_per_domain:0 u p );
  ]

let lines () =
  List.concat_map
    (fun (cname, seed) ->
      let netlist =
        match Catalog.find cname with Ok n -> n | Error m -> failwith m
      in
      let u = Faultsim.universe netlist in
      let prng = Prng.create seed in
      let patterns =
        Faultsim.random_patterns prng
          ~n_inputs:(Compiled.n_inputs u.Faultsim.compiled)
          ~count:fixture_count
      in
      List.concat_map
        (fun (ename, algo, run) ->
          List.map
            (fun drop ->
              let s = run ~drop u patterns in
              Printf.sprintf
                "circuit=%s engine=%s algo=%s drop=%b sites=%d detected=%d \
                 patterns_done=%d sites_done=%d cov=%.6f fd=%s"
                cname ename algo drop s.Faultsim.n_sites (Faultsim.n_detected s)
                s.Faultsim.patterns_done s.Faultsim.sites_done (Faultsim.coverage s)
                (fd_digest s.Faultsim.first_detection))
            [ true; false ])
        engines)
    circuits

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (if line = "" then acc else line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--gen" then
    List.iter print_endline (lines ())
  else begin
    (* The frozen file is a dune dep copied next to the executable, so
       resolve it there — cwd differs between runtest and dune exec. *)
    let path =
      let beside = Filename.concat (Filename.dirname Sys.executable_name) "fixtures.expected" in
      if Sys.file_exists beside then beside else "fixtures.expected"
    in
    let expected = read_lines path in
    let actual = lines () in
    let ne = List.length expected and na = List.length actual in
    let failures = ref 0 in
    if ne <> na then begin
      incr failures;
      Printf.eprintf "fixture count mismatch: expected %d lines, got %d\n" ne na
    end;
    List.iteri
      (fun i e ->
        match List.nth_opt actual i with
        | Some a when a = e -> ()
        | Some a ->
            incr failures;
            Printf.eprintf "fixture drift at line %d:\n  expected: %s\n  actual:   %s\n"
              (i + 1) e a
        | None -> ())
      expected;
    if !failures > 0 then begin
      Printf.eprintf "%d fixture mismatch(es) — engine results changed\n" !failures;
      exit 1
    end;
    Printf.printf "fixtures: %d lines bit-identical\n" na
  end
