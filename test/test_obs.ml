open Dynmos_obs

(* Tests for the observability substrate: JSONL encoding, sinks, the
   disabled recorder, and counters.  A minimal recursive-descent JSON
   checker validates well-formedness (the repo deliberately carries no
   JSON library, so the encoder's output is checked from first
   principles). *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* --- A tiny JSON well-formedness checker ----------------------------------- *)

exception Bad of string

let validate_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d in %s" msg !pos s)) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r') do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit =
    String.iter expect lit
  in
  let string_ () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some _ -> advance ()
    done
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            seen := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail "expected digits"
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> object_ ()
    | Some '[' -> array_ ()
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  and object_ () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_ ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail "expected , or }"
      in
      members ()
  and array_ () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected , or ]"
      in
      elements ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let is_valid_json s =
  match validate_json s with () -> true | exception Bad _ -> false

let test_validator_sanity () =
  check "accepts object" true (is_valid_json {|{"a": 1, "b": [true, null, "x"]}|});
  check "rejects trailing" false (is_valid_json {|{"a": 1} x|});
  check "rejects bare key" false (is_valid_json {|{a: 1}|});
  check "rejects unterminated" false (is_valid_json {|{"a": "b|})

(* --- json_line -------------------------------------------------------------- *)

let ev ?(ts = 12.5) ?(name = "test") fields = { Obs.ts; ev = name; fields }

let test_json_line_valid () =
  let tricky =
    ev
      [
        ("plain", Obs.String "hello");
        ("quote", Obs.String {|say "hi"|});
        ("backslash", Obs.String {|a\b|});
        ("newline", Obs.String "line1\nline2");
        ("control", Obs.String "\x01\x1f");
        ("unicode_bytes", Obs.String "caf\xc3\xa9");
        ("neg", Obs.Int (-42));
        ("float", Obs.Float 1.5e-3);
        ("bool", Obs.Bool true);
      ]
  in
  let line = Obs.json_line tricky in
  check "tricky event encodes to valid JSON" true (is_valid_json line);
  check "single line" false (String.contains line '\n')

let test_json_line_nonfinite () =
  let line = Obs.json_line (ev [ ("a", Obs.Float Float.nan); ("b", Obs.Float infinity) ]) in
  check "non-finite floats still valid JSON" true (is_valid_json line)

let test_json_line_shape () =
  let line = Obs.json_line (ev ~ts:2.0 ~name:"e" [ ("k", Obs.Int 7) ]) in
  check_s "exact shape" {|{"ts":2,"ev":"e","k":7}|} line

(* --- Sinks and recorders ---------------------------------------------------- *)

let test_disabled_recorder () =
  check "disabled is disabled" false (Obs.enabled Obs.disabled);
  (* emit on the disabled recorder must be a no-op, and span must still
     run its thunk and return its value *)
  Obs.emit Obs.disabled ~ev:"x" [ ("a", Obs.Int 1) ];
  check_i "span returns" 3 (Obs.span Obs.disabled ~name:"s" (fun () -> 3))

let test_memory_sink () =
  let sink, fetch = Obs.memory_sink () in
  let t = Obs.make sink in
  check "enabled" true (Obs.enabled t);
  Obs.emit t ~ev:"first" [];
  Obs.emit t ~ev:"second" [ ("n", Obs.Int 1) ];
  (match fetch () with
  | [ a; b ] ->
      check_s "order preserved" "first" a.Obs.ev;
      check_s "second event" "second" b.Obs.ev
  | l -> Alcotest.fail (Fmt.str "expected 2 events, got %d" (List.length l)));
  check "timestamps set" true (List.for_all (fun e -> e.Obs.ts > 0.0) (fetch ()))

let test_span_event () =
  let sink, fetch = Obs.memory_sink () in
  let t = Obs.make sink in
  let r = Obs.span t ~name:"work" ~fields:[ ("tag", Obs.Int 9) ] (fun () -> 21 * 2) in
  check_i "span returns thunk value" 42 r;
  match fetch () with
  | [ e ] ->
      check_s "span event kind" "span" e.Obs.ev;
      check "carries the name" true
        (List.assoc_opt "name" e.Obs.fields = Some (Obs.String "work"));
      check "carries extra fields" true (List.assoc_opt "tag" e.Obs.fields = Some (Obs.Int 9));
      (match List.assoc_opt "dt_s" e.Obs.fields with
      | Some (Obs.Float dt) -> check "non-negative duration" true (dt >= 0.0)
      | _ -> Alcotest.fail "missing dt_s")
  | l -> Alcotest.fail (Fmt.str "expected 1 event, got %d" (List.length l))

let test_tee () =
  let s1, f1 = Obs.memory_sink () in
  let s2, f2 = Obs.memory_sink () in
  let t = Obs.make (Obs.tee s1 s2) in
  Obs.emit t ~ev:"both" [];
  check_i "first sink got it" 1 (List.length (f1 ()));
  check_i "second sink got it" 1 (List.length (f2 ()));
  (* tee with the null sink degrades to the live side *)
  let t2 = Obs.make (Obs.tee Obs.null_sink s1) in
  Obs.emit t2 ~ev:"more" [];
  check_i "null tee still delivers" 2 (List.length (f1 ()))

let test_channel_sink_jsonl () =
  let file = Filename.temp_file "obs_test" ".jsonl" in
  let oc = open_out file in
  let t = Obs.make (Obs.channel_sink oc) in
  Obs.emit t ~ev:"one" [ ("s", Obs.String "a\nb") ];
  Obs.emit t ~ev:"two" [ ("x", Obs.Float 0.5) ];
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  let lines = List.rev !lines in
  check_i "one line per event" 2 (List.length lines);
  List.iter (fun l -> check "line is valid JSON" true (is_valid_json l)) lines

(* Crash tolerance: the channel sink flushes after every event, so a
   campaign killed mid-run loses at most the line being written at that
   instant.  A consumer of the trace must therefore survive a torn final
   line: every complete line (all but possibly the last) still parses,
   and the torn tail is detectably invalid rather than silently merged
   into its predecessor. *)
let test_channel_sink_truncation_tolerance () =
  let file = Filename.temp_file "obs_trunc" ".jsonl" in
  let oc = open_out file in
  let t = Obs.make (Obs.channel_sink oc) in
  for i = 1 to 5 do
    Obs.emit t ~ev:"tick" [ ("i", Obs.Int i); ("tag", Obs.String "payload") ]
  done;
  close_out oc;
  (* simulate the crash: chop the file mid-way through the last line *)
  let ic = open_in_bin file in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let cut = String.length full - 12 in
  let oc = open_out_bin file in
  output_string oc (String.sub full 0 cut);
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  match List.rev !lines with
  | [] -> Alcotest.fail "expected surviving lines"
  | lines ->
      let n = List.length lines in
      List.iteri
        (fun i l ->
          if i < n - 1 then check (Fmt.str "line %d survives" i) true (is_valid_json l)
          else check "torn tail detected" false (is_valid_json l))
        lines;
      (* per-event flushing is what bounds the loss to one line *)
      check_i "all but the torn line survive" 5 n

(* Bounded ring sink: at most [capacity] events retained (oldest evicted),
   lifetime total keeps counting — the shape a long-lived server needs. *)
let test_bounded_memory_sink () =
  let sink, fetch, total = Obs.bounded_memory_sink ~capacity:3 in
  let t = Obs.make sink in
  check "enabled" true (Obs.enabled t);
  check_i "empty ring" 0 (List.length (fetch ()));
  check_i "empty total" 0 (total ());
  Obs.emit t ~ev:"e1" [];
  Obs.emit t ~ev:"e2" [];
  (match fetch () with
  | [ a; b ] ->
      check_s "order before wrap" "e1" a.Obs.ev;
      check_s "order before wrap (2)" "e2" b.Obs.ev
  | l -> Alcotest.fail (Fmt.str "expected 2 events, got %d" (List.length l)));
  for i = 3 to 10 do
    Obs.emit t ~ev:(Fmt.str "e%d" i) []
  done;
  check_i "lifetime total unaffected by eviction" 10 (total ());
  (match fetch () with
  | [ a; b; c ] ->
      check_s "most recent survive" "e8" a.Obs.ev;
      check_s "most recent survive (2)" "e9" b.Obs.ev;
      check_s "most recent survive (3)" "e10" c.Obs.ev
  | l -> Alcotest.fail (Fmt.str "expected 3 events, got %d" (List.length l)));
  check "rejects capacity 0" true
    (match Obs.bounded_memory_sink ~capacity:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "rejects negative capacity" true
    (match Obs.bounded_memory_sink ~capacity:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Counters ---------------------------------------------------------------- *)

let test_counters () =
  let c = Obs.Counters.create () in
  check_i "untouched reads 0" 0 (Obs.Counters.get c "missing");
  Obs.Counters.incr c "a";
  Obs.Counters.incr c "a";
  Obs.Counters.add c "b" 40;
  check_i "incr" 2 (Obs.Counters.get c "a");
  check_i "add" 40 (Obs.Counters.get c "b");
  let d = Obs.Counters.create () in
  Obs.Counters.add d "a" 1;
  Obs.Counters.add d "c" 5;
  Obs.Counters.merge_into ~dst:c d;
  check_i "merge adds" 3 (Obs.Counters.get c "a");
  check_i "merge introduces" 5 (Obs.Counters.get c "c");
  check "to_list sorted" true
    (Obs.Counters.to_list c = [ ("a", 3); ("b", 40); ("c", 5) ])

let test_emit_counters () =
  let sink, fetch = Obs.memory_sink () in
  let t = Obs.make sink in
  let c = Obs.Counters.create () in
  Obs.Counters.add c "evals" 7;
  Obs.emit_counters t ~ev:"totals" ~fields:[ ("engine", Obs.String "serial") ] c;
  match fetch () with
  | [ e ] ->
      check "counter as field" true (List.assoc_opt "evals" e.Obs.fields = Some (Obs.Int 7));
      check "extra field first" true
        (List.assoc_opt "engine" e.Obs.fields = Some (Obs.String "serial"));
      check "event line valid" true (is_valid_json (Obs.json_line e))
  | l -> Alcotest.fail (Fmt.str "expected 1 event, got %d" (List.length l))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "validator sanity" `Quick test_validator_sanity;
          Alcotest.test_case "tricky strings encode validly" `Quick test_json_line_valid;
          Alcotest.test_case "non-finite floats" `Quick test_json_line_nonfinite;
          Alcotest.test_case "exact line shape" `Quick test_json_line_shape;
        ] );
      ( "recorders",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_disabled_recorder;
          Alcotest.test_case "memory sink" `Quick test_memory_sink;
          Alcotest.test_case "span" `Quick test_span_event;
          Alcotest.test_case "tee" `Quick test_tee;
          Alcotest.test_case "channel sink writes JSONL" `Quick test_channel_sink_jsonl;
          Alcotest.test_case "crash-truncated trace stays readable" `Quick
            test_channel_sink_truncation_tolerance;
          Alcotest.test_case "bounded memory sink" `Quick test_bounded_memory_sink;
        ] );
      ( "counters",
        [
          Alcotest.test_case "tallies and merge" `Quick test_counters;
          Alcotest.test_case "emit_counters" `Quick test_emit_counters;
        ] );
    ]
