open Dynmos_util
open Dynmos_cell
open Dynmos_core
open Dynmos_netlist
open Dynmos_faultsim
open Dynmos_circuits

(* Tests for fault simulation: universe construction and the agreement of
   the serial, bit-parallel and deductive engines — which is itself a
   reproduction artefact: the paper's point is that dynamic-MOS faults stay
   combinational so classical injection machinery applies. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let fig9_u () = Faultsim.universe (Generators.fig9_network ())

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_universe_fig9 () =
  let u = fig9_u () in
  (* one gate, ten detectable function classes *)
  check_i "ten sites" 10 (Faultsim.n_sites u);
  check_i "one library" 1 (List.length u.Faultsim.libraries);
  let labels = Array.to_list (Array.map (Faultsim.site_label u) u.Faultsim.sites) in
  check "labels carry members" true (List.exists (fun l -> contains l "CMOS-2") labels)

let test_universe_shares_libraries () =
  let nl = Generators.and_tree ~technology:Technology.Domino_cmos 8 in
  let u = Faultsim.universe nl in
  (* many gates, few distinct cells *)
  check "fewer libraries than gates" true
    (List.length u.Faultsim.libraries < Netlist.n_gates nl);
  check "sites = gates x classes" true (Faultsim.n_sites u > Netlist.n_gates nl)

let test_detects () =
  let u = fig9_u () in
  (* site for class 2 ("a open": u = d*e): detected by any vector where
     a*(b+c) = 1 and d*e = 0. *)
  let site =
    Array.to_list u.Faultsim.sites
    |> List.find (fun s -> s.Faultsim.entry.Faultlib.class_id = 2)
  in
  check "11000 detects a-open" true (Faultsim.detects u site [| true; true; false; false; false |]);
  check "00011 does not" false (Faultsim.detects u site [| false; false; false; true; true |])

(* All engines — serial, bit-parallel, deductive, concurrent, PPSFP and
   the two domain-parallel kernels, each injection engine under both the
   full and the cone-restricted algorithm — must produce identical
   first_detection.  The reference is the classical whole-circuit serial
   kernel. *)
let engines_agree u patterns =
  let s1 = Faultsim.run_serial ~drop:false ~algo:`Full u patterns in
  let agree s = s.Faultsim.first_detection = s1.Faultsim.first_detection in
  agree (Faultsim.run_serial ~drop:false ~algo:`Cone u patterns)
  && agree (Faultsim.run_parallel ~drop:false ~algo:`Full u patterns)
  && agree (Faultsim.run_parallel ~drop:false ~algo:`Cone u patterns)
  && agree (Faultsim.run_deductive ~drop:false ~algo:`Full u patterns)
  && agree (Faultsim.run_deductive ~drop:false ~algo:`Cone u patterns)
  && agree (Faultsim.run_concurrent ~drop:false ~algo:`Full u patterns)
  && agree (Faultsim.run_concurrent ~drop:false ~algo:`Cone u patterns)
  && agree (Faultsim.run_ppsfp ~drop:false ~algo:`Full ~group:4 u patterns)
  && agree (Faultsim.run_ppsfp ~drop:false ~algo:`Cone ~group:4 u patterns)
  && List.for_all
       (fun (inner, algo) ->
         agree
           (Faultsim.run_domain_parallel ~drop:false ~inner ~algo ~min_work_per_domain:0 u
              patterns))
       [
         (Parallel_exec.Bit_parallel, `Full);
         (Parallel_exec.Bit_parallel, `Cone);
         (Parallel_exec.Serial, `Full);
         (Parallel_exec.Serial, `Cone);
       ]

let test_engines_agree_fig9 () =
  let u = fig9_u () in
  let patterns = Faultsim.exhaustive_patterns 5 in
  check "serial = parallel = deductive = concurrent" true (engines_agree u patterns)

let test_engines_agree_benchmarks () =
  let prng = Prng.create 11 in
  List.iter
    (fun nl ->
      let u = Faultsim.universe nl in
      let patterns =
        Faultsim.random_patterns prng
          ~n_inputs:(List.length (Netlist.inputs nl))
          ~count:100
      in
      check (Netlist.name nl) true (engines_agree u patterns))
    [
      Generators.c17 ~style:`Static ();
      Generators.c17 ~style:`Domino ();
      Generators.carry_chain ~technology:Technology.Domino_cmos 6;
      Generators.parity ~style:`Domino 4;
      Generators.random_monotone ~seed:3 ~n_inputs:6 ~n_gates:12
        ~technology:Technology.Domino_cmos ();
    ]

(* Cross-engine differential suite: pattern-count edge cases around the
   62-bit word boundary, and multi-output circuits. *)
let test_engines_agree_edge_counts () =
  let u = Faultsim.universe (Generators.ripple_adder ~style:`Domino 2) in
  let n_in = List.length (Netlist.inputs (Generators.ripple_adder ~style:`Domino 2)) in
  let prng = Prng.create 7 in
  List.iter
    (fun count ->
      let pats = Faultsim.random_patterns prng ~n_inputs:n_in ~count in
      check (Fmt.str "%d patterns" count) true (engines_agree u pats))
    [ 0; 1; 61; 62; 63; 124; 125 ]

let test_engines_agree_multi_output () =
  let prng = Prng.create 29 in
  List.iter
    (fun nl ->
      let u = Faultsim.universe nl in
      check
        (Fmt.str "%s (%d outputs)" (Netlist.name nl) (List.length (Netlist.outputs nl)))
        true
        (List.length (Netlist.outputs nl) > 1
        && engines_agree u
             (Faultsim.random_patterns prng
                ~n_inputs:(List.length (Netlist.inputs nl))
                ~count:80))
    )
    [
      Generators.ripple_adder ~style:`Domino 3;
      Generators.decoder ~style:`Domino 3;
      Generators.random_monotone ~seed:13 ~n_inputs:7 ~n_gates:15
        ~technology:Technology.Domino_cmos ();
    ]

(* --- Fanout-cone structural analysis ----------------------------------------- *)

module Compiled = Dynmos_sim.Compiled

(* An explicitly reconvergent circuit: g1 fans out along two paths (g2,
   g3) that reconverge at g4, and g2 is additionally tapped as a second
   primary output — the shape where naive difference propagation goes
   wrong and the cone kernel must still match whole-circuit injection. *)
let reconvergent_netlist () =
  let and2 = Stdcells.and_gate 2 Technology.Domino_cmos in
  let or2 = Stdcells.or_gate 2 Technology.Domino_cmos in
  let b = Netlist.Builder.create "reconv" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  let g1 = Netlist.Builder.add b and2 ~inputs:[ a; c ] ~output:"g1" in
  let g2 = Netlist.Builder.add b or2 ~inputs:[ g1; a ] ~output:"g2" in
  let g3 = Netlist.Builder.add b and2 ~inputs:[ g1; c ] ~output:"g3" in
  let g4 = Netlist.Builder.add b or2 ~inputs:[ g2; g3 ] ~output:"g4" in
  Netlist.Builder.output b g2;
  Netlist.Builder.output b g4;
  Netlist.Builder.finish b

let test_cone_reconvergent () =
  let nl = reconvergent_netlist () in
  let c = Compiled.compile nl in
  (* g1 (gate id 0) influences every gate through two reconvergent paths
     and reaches both primary outputs. *)
  check "g1 cone is everything" true (Compiled.fanout_cone c 0 = [| 0; 1; 2; 3 |]);
  check_i "g1 reaches both POs" 2 (Array.length (Compiled.reachable_outputs c 0));
  (* g3 (id 2) only feeds g4: one reachable output. *)
  check "g3 cone" true (Compiled.fanout_cone c 2 = [| 2; 3 |]);
  check_i "g3 reaches one PO" 1 (Array.length (Compiled.reachable_outputs c 2));
  check_i "max cone" 4 (Compiled.max_cone_size c);
  (* and the engines agree on it, exhaustively *)
  let u = Faultsim.universe nl in
  check "engines agree on reconvergent circuit" true
    (engines_agree u (Faultsim.exhaustive_patterns 2))

(* Reconvergence at scale: every differential engine pair on random
   monotone circuits (they contain shared fanout by construction). *)
let test_cone_reconvergent_random () =
  let prng = Prng.create 59 in
  List.iter
    (fun seed ->
      let nl =
        Generators.random_monotone ~seed ~n_inputs:8 ~n_gates:30
          ~technology:Technology.Domino_cmos ()
      in
      let u = Faultsim.universe nl in
      let pats = Faultsim.random_patterns prng ~n_inputs:8 ~count:100 in
      check (Fmt.str "seed %d" seed) true (engines_agree u pats))
    [ 2; 21; 77 ]

(* Cone restriction on the propagation engines specifically: full vs
   cone must match on reconvergent shapes under both drop settings —
   dropping retires sites mid-run, which is exactly when a stale
   active-gate count would make the cone kernel skip a gate some live
   fault still needs. *)
let test_propagation_cone_differential () =
  let circuits =
    [
      reconvergent_netlist ();
      Generators.random_monotone ~seed:21 ~n_inputs:8 ~n_gates:30
        ~technology:Technology.Domino_cmos ();
    ]
  in
  let prng = Prng.create 97 in
  List.iter
    (fun nl ->
      let u = Faultsim.universe nl in
      let n_in = List.length (Netlist.inputs nl) in
      let pats = Faultsim.random_patterns prng ~n_inputs:n_in ~count:100 in
      List.iter
        (fun (name, run) ->
          List.iter
            (fun drop ->
              let full = run ~drop ~algo:`Full u pats in
              let cone = run ~drop ~algo:`Cone u pats in
              check
                (Fmt.str "%s %s drop=%b" (Netlist.name nl) name drop)
                true
                (full.Faultsim.first_detection = cone.Faultsim.first_detection))
            [ false; true ])
        [
          ("deductive", fun ~drop ~algo u p -> Faultsim.run_deductive ~drop ~algo u p);
          ("concurrent", fun ~drop ~algo u p -> Faultsim.run_concurrent ~drop ~algo u p);
        ])
    circuits

(* --- Domain-parallel layer -------------------------------------------------- *)

(* Same results for every domain count, for both inner kernels.  The
   tests disable the work clamp (min_work_per_domain:0) so small test
   circuits genuinely run on several domains. *)
let test_domain_counts_equal () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 6 in
  let u = Faultsim.universe nl in
  let prng = Prng.create 41 in
  let pats =
    Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count:90
  in
  let reference = Faultsim.run_serial ~drop:false u pats in
  List.iter
    (fun inner ->
      List.iter
        (fun n ->
          let s =
            Faultsim.run_domain_parallel ~drop:false ~inner ~num_domains:n
              ~min_work_per_domain:0 u pats
          in
          check (Fmt.str "num_domains=%d" n) true
            (s.Faultsim.first_detection = reference.Faultsim.first_detection))
        [ 1; 2; 4 ])
    [ Parallel_exec.Serial; Parallel_exec.Bit_parallel ]

(* Dropping only skips work after a site's first detection: summaries with
   and without dropping are identical, for any domain count. *)
let test_domain_drop_semantics () =
  let nl = Generators.c17 ~style:`Domino () in
  let u = Faultsim.universe nl in
  let prng = Prng.create 43 in
  let pats =
    Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count:100
  in
  List.iter
    (fun n ->
      let with_drop =
        Faultsim.run_domain_parallel ~drop:true ~num_domains:n ~min_work_per_domain:0 u pats
      in
      let without =
        Faultsim.run_domain_parallel ~drop:false ~num_domains:n ~min_work_per_domain:0 u pats
      in
      check (Fmt.str "drop invariant, num_domains=%d" n) true
        (with_drop.Faultsim.first_detection = without.Faultsim.first_detection);
      check (Fmt.str "matches serial, num_domains=%d" n) true
        (with_drop.Faultsim.first_detection
        = (Faultsim.run_serial ~drop:true u pats).Faultsim.first_detection))
    [ 1; 3 ]

let test_domain_empty_universe () =
  (* More domains than sites, and zero patterns, must both be safe. *)
  let u = fig9_u () in
  let s = Faultsim.run_domain_parallel ~num_domains:8 ~min_work_per_domain:0 u [||] in
  check_i "no patterns" 0 s.Faultsim.n_patterns;
  check "nothing detected" true (Array.for_all (( = ) None) s.Faultsim.first_detection);
  let pats = Faultsim.exhaustive_patterns 5 in
  let s = Faultsim.run_domain_parallel ~num_domains:32 ~min_work_per_domain:0 u pats in
  check "32 domains, 10 sites" true
    (s.Faultsim.first_detection = (Faultsim.run_serial u pats).Faultsim.first_detection)

let test_exhaustive_full_coverage () =
  (* Every site of the fig9 universe is detectable (library excluded the
     redundant ones), so exhaustive patterns reach 100%. *)
  let u = fig9_u () in
  let s = Faultsim.run_parallel u (Faultsim.exhaustive_patterns 5) in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Faultsim.coverage s);
  check_i "all detected" (Faultsim.n_sites u) (Faultsim.n_detected s);
  check "no undetected" true (Faultsim.undetected u s = [])

let test_more_patterns_dont_hurt () =
  let u = Faultsim.universe (Generators.c17 ~style:`Domino ()) in
  let prng = Prng.create 5 in
  let n_in = Dynmos_sim.Compiled.n_inputs u.Faultsim.compiled in
  let pats = Faultsim.random_patterns prng ~n_inputs:n_in ~count:64 in
  let half = Array.sub pats 0 32 in
  let c1 = Faultsim.coverage (Faultsim.run_parallel u half) in
  let c2 = Faultsim.coverage (Faultsim.run_parallel u pats) in
  check "monotone coverage" true (c2 >= c1)

let test_coverage_curve () =
  let u = fig9_u () in
  let pats = Faultsim.exhaustive_patterns 5 in
  let s = Faultsim.run_parallel u pats in
  let curve = Faultsim.coverage_curve s in
  check_i "curve length" (Array.length pats + 1) (Array.length curve);
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 curve.(0);
  Alcotest.(check (float 1e-9)) "ends at coverage" (Faultsim.coverage s)
    curve.(Array.length curve - 1);
  let monotone = ref true in
  for i = 1 to Array.length curve - 1 do
    if curve.(i) < curve.(i - 1) then monotone := false
  done;
  check "monotone" true !monotone

let test_drop_consistency () =
  (* With fault dropping the achieved *set* of detected faults is the
     same; first_detection may only be earlier or equal. *)
  let u = Faultsim.universe (Generators.carry_chain ~technology:Technology.Domino_cmos 5) in
  let prng = Prng.create 19 in
  let pats = Faultsim.random_patterns prng ~n_inputs:11 ~count:80 in
  let with_drop = Faultsim.run_parallel ~drop:true u pats in
  let without = Faultsim.run_parallel ~drop:false u pats in
  check "same detection set" true
    (Array.for_all2
       (fun a b -> (a = None) = (b = None))
       with_drop.Faultsim.first_detection without.Faultsim.first_detection);
  check "same first pattern" true
    (with_drop.Faultsim.first_detection = without.Faultsim.first_detection)

let test_weighted_patterns () =
  let prng = Prng.create 23 in
  let w = [| 0.9; 0.1 |] in
  let pats = Faultsim.random_patterns ~weights:w prng ~n_inputs:2 ~count:2000 in
  let count i = Array.fold_left (fun acc p -> if p.(i) then acc + 1 else acc) 0 pats in
  let f0 = float_of_int (count 0) /. 2000.0 in
  let f1 = float_of_int (count 1) /. 2000.0 in
  check "input 0 mostly 1" true (f0 > 0.85 && f0 < 0.95);
  check "input 1 mostly 0" true (f1 > 0.05 && f1 < 0.15)

let test_exhaustive_patterns () =
  let pats = Faultsim.exhaustive_patterns 3 in
  check_i "8 patterns" 8 (Array.length pats);
  check "row 5 = 101" true (pats.(5) = [| true; false; true |])

(* --- Pattern-generator validation ------------------------------------------- *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_exhaustive_bounds () =
  check "negative raises" true (raises_invalid (fun () -> Faultsim.exhaustive_patterns (-1)));
  check "beyond the bound raises" true
    (raises_invalid (fun () ->
         Faultsim.exhaustive_patterns (Faultsim.max_exhaustive_inputs + 1)));
  check "62 would overflow, raises (not shifts)" true
    (raises_invalid (fun () -> Faultsim.exhaustive_patterns 62));
  check_i "zero inputs = one empty pattern" 1 (Array.length (Faultsim.exhaustive_patterns 0))

let test_random_patterns_validation () =
  let prng = Prng.create 1 in
  check "negative n_inputs raises" true
    (raises_invalid (fun () -> Faultsim.random_patterns prng ~n_inputs:(-1) ~count:4));
  check "negative count raises" true
    (raises_invalid (fun () -> Faultsim.random_patterns prng ~n_inputs:2 ~count:(-1)));
  check "short weights raises" true
    (raises_invalid (fun () ->
         Faultsim.random_patterns ~weights:[| 0.5 |] prng ~n_inputs:3 ~count:4));
  check "weight > 1 raises" true
    (raises_invalid (fun () ->
         Faultsim.random_patterns ~weights:[| 0.5; 1.5 |] prng ~n_inputs:2 ~count:4));
  check "nan weight raises" true
    (raises_invalid (fun () ->
         Faultsim.random_patterns ~weights:[| Float.nan; 0.5 |] prng ~n_inputs:2 ~count:4));
  (* the error message must name the problem, not just "index out of bounds" *)
  (match Faultsim.random_patterns ~weights:[| 0.5 |] prng ~n_inputs:3 ~count:4 with
  | exception Invalid_argument msg ->
      check "message names weights" true (contains msg "weights")
  | _ -> Alcotest.fail "expected Invalid_argument");
  (* boundary probabilities 0 and 1 are legal and deterministic *)
  let pats = Faultsim.random_patterns ~weights:[| 0.0; 1.0 |] prng ~n_inputs:2 ~count:8 in
  check "p=0 always false / p=1 always true" true
    (Array.for_all (fun p -> (not p.(0)) && p.(1)) pats)

(* --- Universe validation and restriction ------------------------------------ *)

let invalid_msg f =
  match f () with
  | exception Invalid_argument msg -> msg
  | _ -> Alcotest.fail "expected Invalid_argument"

(* [validate_universe] catches hand-assembled universes that would make
   the engines index out of bounds or double-count detections. *)
let test_validate_universe () =
  let u = Faultsim.universe (Generators.c17 ~style:`Domino ()) in
  Faultsim.validate_universe u;  (* the constructor's output is valid *)
  let copy () = { u with Faultsim.sites = Array.map Fun.id u.Faultsim.sites } in
  (* non-dense sid *)
  let broken = copy () in
  broken.Faultsim.sites.(0) <- { broken.Faultsim.sites.(0) with Faultsim.sid = 5 };
  let msg = invalid_msg (fun () -> Faultsim.validate_universe broken) in
  check "names the sid" true (contains msg "sid");
  (* duplicate (gate, class) pair — sids stay dense *)
  let broken = copy () in
  broken.Faultsim.sites.(1) <- { broken.Faultsim.sites.(0) with Faultsim.sid = 1 };
  let msg = invalid_msg (fun () -> Faultsim.validate_universe broken) in
  check "names the duplicate site" true (contains msg "duplicate");
  (* gate id outside the compiled circuit *)
  let broken = copy () in
  let s0 = broken.Faultsim.sites.(0) in
  broken.Faultsim.sites.(0) <-
    { s0 with Faultsim.gate = { s0.Faultsim.gate with Netlist.id = 99 } };
  let msg = invalid_msg (fun () -> Faultsim.validate_universe broken) in
  check "names the gate id" true (contains msg "gate")

let test_restrict_universe () =
  let nl = Generators.c17 ~style:`Domino () in
  let u = Faultsim.universe nl in
  let gates = [ 0; 2 ] in
  let ru = Faultsim.restrict_universe u ~gates in
  check "fewer sites" true (Faultsim.n_sites ru < Faultsim.n_sites u);
  check "only the listed gates" true
    (Array.for_all (fun s -> List.mem s.Faultsim.gate.Netlist.id gates) ru.Faultsim.sites);
  (* result is valid by construction: dense sids, in-range gates *)
  Faultsim.validate_universe ru;
  (* detections on the sub-universe match the corresponding sites of a
     full-universe run, pattern for pattern *)
  let prng = Prng.create 7 in
  let pats =
    Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count:32
  in
  let full = Faultsim.run_serial ~drop:false u pats in
  let sub = Faultsim.run_serial ~drop:false ru pats in
  Array.iter
    (fun s ->
      let key s = (s.Faultsim.gate.Netlist.id, s.Faultsim.entry.Faultlib.class_id) in
      let orig =
        Array.to_list u.Faultsim.sites |> List.find (fun o -> key o = key s)
      in
      check "restricted detection matches full run" true
        (sub.Faultsim.first_detection.(s.Faultsim.sid)
        = full.Faultsim.first_detection.(orig.Faultsim.sid)))
    ru.Faultsim.sites;
  (* bad gate lists are named errors *)
  check "out-of-range gate raises" true
    (raises_invalid (fun () -> Faultsim.restrict_universe u ~gates:[ 0; 99 ]));
  check "negative gate raises" true
    (raises_invalid (fun () -> Faultsim.restrict_universe u ~gates:[ -1 ]));
  check "duplicate gate raises" true
    (raises_invalid (fun () -> Faultsim.restrict_universe u ~gates:[ 1; 1 ]));
  check "empty restriction is legal" true
    (Faultsim.n_sites (Faultsim.restrict_universe u ~gates:[]) = 0)

(* --- PPSFP ------------------------------------------------------------------- *)

(* Group size is a pure performance knob: every G — including 1, a
   non-divisor of the site count, and one exceeding the whole universe —
   reproduces the bit-parallel engine's first_detection under both
   algorithms and both drop settings. *)
let test_ppsfp_group_sizes () =
  let nl =
    Generators.random_monotone ~seed:21 ~n_inputs:8 ~n_gates:30
      ~technology:Technology.Domino_cmos ()
  in
  let u = Faultsim.universe nl in
  let prng = Prng.create 83 in
  let pats = Faultsim.random_patterns prng ~n_inputs:8 ~count:100 in
  let reference = Faultsim.run_parallel ~drop:false u pats in
  List.iter
    (fun group ->
      List.iter
        (fun (drop, algo, aname) ->
          let s = Faultsim.run_ppsfp ~drop ~algo ~group u pats in
          check
            (Fmt.str "group=%d algo=%s drop=%b" group aname drop)
            true
            (s.Faultsim.first_detection = reference.Faultsim.first_detection))
        [
          (false, `Cone, "cone");
          (false, `Full, "full");
          (true, `Cone, "cone");
          (true, `Full, "full");
        ])
    [ 1; 3; 16; 64; 1000 ];
  check "group 0 raises" true
    (raises_invalid (fun () -> Faultsim.run_ppsfp ~group:0 u pats))

(* Fault dropping compacts the group partition between pattern units:
   once a site is detected it is never simulated again.  [trace_site]
   fires once per live site per 62-pattern unit, so the recorded unit
   starts pin the compaction exactly: a detected site's last trace is
   the unit containing its first detection, an undetected site is
   traced in every unit, and no (site, unit) pair repeats. *)
let test_ppsfp_compaction_never_resimulates () =
  let nl =
    Generators.random_monotone ~seed:3 ~n_inputs:8 ~n_gates:30
      ~technology:Technology.Domino_cmos ()
  in
  let u = Faultsim.universe nl in
  let prng = Prng.create 89 in
  let pats = Faultsim.random_patterns prng ~n_inputs:8 ~count:200 in
  let traces : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let trace_site ~sid ~start =
    Hashtbl.replace traces sid
      (start :: Option.value ~default:[] (Hashtbl.find_opt traces sid))
  in
  let s = Faultsim.run_ppsfp ~drop:true ~group:7 ~trace_site u pats in
  let n_units = (Array.length pats + 61) / 62 in
  Hashtbl.iter
    (fun sid starts ->
      check
        (Fmt.str "site %d traced at most once per unit" sid)
        true
        (List.length (List.sort_uniq compare starts) = List.length starts))
    traces;
  Array.iteri
    (fun sid first ->
      let starts = Option.value ~default:[] (Hashtbl.find_opt traces sid) in
      match first with
      | Some p ->
          let detecting_unit = p - (p mod 62) in
          check (Fmt.str "site %d simulated in its detecting unit" sid) true
            (List.mem detecting_unit starts);
          check (Fmt.str "site %d retired after detection" sid) true
            (List.for_all (fun st -> st <= detecting_unit) starts)
      | None ->
          check (Fmt.str "undetected site %d simulated in every unit" sid) true
            (List.length starts = n_units))
    s.Faultsim.first_detection;
  check "compaction changes no detections" true
    (s.Faultsim.first_detection
    = (Faultsim.run_ppsfp ~drop:false ~group:7 u pats).Faultsim.first_detection)

(* Restricted universes (arbitrary site subsets, still ascending sid /
   non-decreasing gate order) go through the same kernel. *)
let test_ppsfp_restricted_universe () =
  let nl =
    Generators.random_monotone ~seed:21 ~n_inputs:8 ~n_gates:30
      ~technology:Technology.Domino_cmos ()
  in
  let u = Faultsim.universe nl in
  let ru = Faultsim.restrict_universe u ~gates:[ 0; 5; 7; 13; 22 ] in
  let prng = Prng.create 91 in
  let pats = Faultsim.random_patterns prng ~n_inputs:8 ~count:90 in
  let reference = Faultsim.run_parallel ~drop:false ru pats in
  List.iter
    (fun (algo, aname) ->
      check (Fmt.str "restricted universe, %s" aname) true
        ((Faultsim.run_ppsfp ~drop:false ~algo ~group:4 ru pats).Faultsim.first_detection
        = reference.Faultsim.first_detection))
    [ (`Cone, "cone"); (`Full, "full") ]

(* The word-matrix primitives against the scalar evaluator: sweeping a
   whole circuit with [eval_fn_rows] (fast paths included) must leave
   every lane equal to an independent [eval_words_into] run on that
   lane's input words, and the scalar [eval_fn_in_matrix] path must
   agree with the grouped rows. *)
let test_word_matrix_matches_scalar () =
  let nl =
    Generators.random_monotone ~seed:17 ~n_inputs:6 ~n_gates:20
      ~technology:Technology.Domino_cmos ()
  in
  let c = Compiled.compile nl in
  let width = 5 in
  let m = Compiled.make_word_matrix c ~width in
  let prng = Prng.create 93 in
  let n_in = Compiled.n_inputs c in
  let lane_inputs =
    Array.init width (fun _ -> Array.init n_in (fun _ -> Prng.bits62 prng))
  in
  for net = 0 to n_in - 1 do
    for lane = 0 to width - 1 do
      Bigarray.Array1.set m ((net * width) + lane) lane_inputs.(lane).(net)
    done
  done;
  let tmp = Array.make width 0 in
  let gates = Compiled.gates c in
  Array.iter
    (fun g ->
      Compiled.eval_fn_rows g.Compiled.fn g.Compiled.ins m ~width ~out:g.Compiled.out
        ~tmp)
    gates;
  let scratch = Compiled.make_scratch c in
  for lane = 0 to width - 1 do
    Compiled.eval_words_into c ~scratch lane_inputs.(lane);
    for net = 0 to Compiled.n_nets c - 1 do
      check_i
        (Fmt.str "lane %d net %d" lane net)
        scratch.(net)
        (Bigarray.Array1.get m ((net * width) + lane))
    done
  done;
  Array.iter
    (fun g ->
      for lane = 0 to width - 1 do
        check_i "eval_fn_in_matrix agrees with eval_fn_rows"
          (Bigarray.Array1.get m ((g.Compiled.out * width) + lane))
          (Compiled.eval_fn_in_matrix g.Compiled.fn g.Compiled.ins m ~width ~lane)
      done)
    gates;
  Compiled.matrix_fill_row m ~width ~net:0 12345;
  for lane = 0 to width - 1 do
    check_i "matrix_fill_row broadcasts" 12345 (Bigarray.Array1.get m lane)
  done;
  check "width 0 raises" true
    (raises_invalid (fun () -> Compiled.make_word_matrix c ~width:0))

(* --- Observability ---------------------------------------------------------- *)

module Obs = Dynmos_obs.Obs

(* With and without a recorder, every engine produces bit-identical
   summaries: observation must never change results. *)
let test_obs_parity () =
  let u = Faultsim.universe (Generators.c17 ~style:`Domino ()) in
  let prng = Prng.create 47 in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(Dynmos_sim.Compiled.n_inputs u.Faultsim.compiled)
      ~count:90
  in
  let engines =
    [
      ("serial", fun obs -> Faultsim.run_serial ~obs u pats);
      ("parallel", fun obs -> Faultsim.run_parallel ~obs u pats);
      ("deductive", fun obs -> Faultsim.run_deductive ~obs u pats);
      ("concurrent", fun obs -> Faultsim.run_concurrent ~obs u pats);
      ( "domains",
        fun obs ->
          Faultsim.run_domain_parallel ~num_domains:2 ~min_work_per_domain:0 ~obs u pats );
    ]
  in
  List.iter
    (fun (name, run) ->
      let sink, fetch = Obs.memory_sink () in
      let observed = run (Obs.make sink) in
      let plain = run Obs.disabled in
      check (name ^ ": identical summaries") true
        (observed.Faultsim.first_detection = plain.Faultsim.first_detection);
      check (name ^ ": emitted a run event") true
        (List.exists (fun e -> e.Obs.ev = "faultsim.run") (fetch ())))
    engines

let field_int e name =
  match List.assoc_opt name e.Obs.fields with Some (Obs.Int n) -> Some n | _ -> None

let run_event fetch =
  match List.filter (fun e -> e.Obs.ev = "faultsim.run") (fetch ()) with
  | [ e ] -> e
  | l -> Alcotest.fail (Fmt.str "expected exactly one faultsim.run event, got %d" (List.length l))

(* The per-domain counters must reconcile with the serial engine: same
   kernel (Serial inner), same drop setting -> same number of faulty-
   machine evaluations, no matter how many domains did the work. *)
let test_obs_eval_reconciliation () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 6 in
  let u = Faultsim.universe nl in
  let prng = Prng.create 53 in
  let pats =
    Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count:70
  in
  List.iter
    (fun drop ->
      let sink, fetch = Obs.memory_sink () in
      ignore (Faultsim.run_serial ~drop ~obs:(Obs.make sink) u pats);
      let serial_evals = Option.get (field_int (run_event fetch) "evals") in
      if not drop then
        check_i "no-drop serial evals = sites x patterns"
          (Faultsim.n_sites u * Array.length pats)
          serial_evals;
      List.iter
        (fun n ->
          let _, st =
            Faultsim.run_domain_parallel_stats ~drop ~inner:Parallel_exec.Serial ~num_domains:n
              ~min_work_per_domain:0 u pats
          in
          check_i
            (Fmt.str "domains(%d) drop=%b evals = serial evals" n drop)
            serial_evals
            (Parallel_exec.stats_evals st);
          let per_domain_sum =
            Array.fold_left
              (fun acc d -> acc + d.Parallel_exec.evals)
              0 st.Parallel_exec.per_domain
          in
          check_i "per-domain tallies sum to total" serial_evals per_domain_sum;
          let jobs_sum =
            Array.fold_left
              (fun acc d -> acc + d.Parallel_exec.jobs_claimed)
              0 st.Parallel_exec.per_domain
          in
          check_i "every job claimed exactly once" st.Parallel_exec.n_jobs jobs_sum)
        [ 1; 2; 3 ])
    [ false; true ]

(* The unified driver owns one accounting definition — one kernel
   evaluation per live site per pattern unit — so every per-pattern
   engine must report the SAME evals/evals_saved totals for the same
   campaign: the numbers are a property of the campaign, not of the
   kernel.  Bit-parallel units are 62-pattern words, so its totals
   scale by the chunk count instead. *)
let test_unified_accounting_totals () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 6 in
  let u = Faultsim.universe nl in
  let prng = Prng.create 67 in
  let n_in = List.length (Netlist.inputs nl) in
  let pats = Faultsim.random_patterns prng ~n_inputs:n_in ~count:100 in
  let totals run =
    let sink, fetch = Obs.memory_sink () in
    ignore (run (Obs.make sink));
    let e = run_event fetch in
    (Option.get (field_int e "evals"), Option.get (field_int e "evals_saved"))
  in
  List.iter
    (fun drop ->
      let se, ss = totals (fun obs -> Faultsim.run_serial ~drop ~obs u pats) in
      check_i
        (Fmt.str "drop=%b: serial accounts the full workload" drop)
        (Faultsim.n_sites u * Array.length pats)
        (se + ss);
      List.iter
        (fun (name, run) ->
          let e, s = totals (run ~drop) in
          check_i (Fmt.str "drop=%b: %s evals = serial evals" drop name) se e;
          check_i (Fmt.str "drop=%b: %s evals_saved = serial evals_saved" drop name) ss s)
        [
          ("deductive", fun ~drop obs -> Faultsim.run_deductive ~drop ~obs u pats);
          ("concurrent", fun ~drop obs -> Faultsim.run_concurrent ~drop ~obs u pats);
        ];
      let chunks = (Array.length pats + 61) / 62 in
      let pe, ps = totals (fun obs -> Faultsim.run_parallel ~drop ~obs u pats) in
      check_i
        (Fmt.str "drop=%b: parallel accounts sites x chunks" drop)
        (Faultsim.n_sites u * chunks)
        (pe + ps);
      if not drop then
        check_i "no-drop parallel evals = sites x chunks" (Faultsim.n_sites u * chunks) pe)
    [ false; true ]

(* Cone vs full bookkeeping: identical kernel-invocation counts and
   results, strictly fewer gate evaluations for the cone on a circuit
   with meaningful structure. *)
let test_cone_gate_evals () =
  let nl =
    Generators.random_monotone ~seed:3 ~n_inputs:8 ~n_gates:30
      ~technology:Technology.Domino_cmos ()
  in
  let u = Faultsim.universe nl in
  let prng = Prng.create 61 in
  let pats = Faultsim.random_patterns prng ~n_inputs:8 ~count:100 in
  List.iter
    (fun (name, run) ->
      let measure algo =
        let sink, fetch = Obs.memory_sink () in
        ignore (run algo (Obs.make sink));
        let e = run_event fetch in
        ( Option.get (field_int e "evals"),
          Option.get (field_int e "gate_evals"),
          Option.get (field_int e "gate_evals_saved") )
      in
      let e_cone, g_cone, s_cone = measure `Cone in
      let e_full, g_full, s_full = measure `Full in
      check_i (name ^ ": same kernel invocations") e_full e_cone;
      check (name ^ ": cone does strictly fewer gate evals") true (g_cone < g_full);
      check_i (name ^ ": full sweeps every gate") (e_full * Netlist.n_gates nl) g_full;
      (* both account against the same total workload *)
      check_i (name ^ ": accounting totals agree") (g_full + s_full) (g_cone + s_cone))
    [
      ("serial", fun algo obs -> Faultsim.run_serial ~drop:false ~algo ~obs u pats);
      ("parallel", fun algo obs -> Faultsim.run_parallel ~drop:false ~algo ~obs u pats);
    ]

(* All-detected early exit: once every site is detected under drop, the
   remaining patterns are skipped, yet (a) results equal the no-drop run
   and (b) evals + evals_saved still accounts for the full
   sites x patterns (or sites x chunks) workload. *)
let test_early_exit_accounting () =
  let u = fig9_u () in
  (* exhaustive fig9 reaches full coverage within the first 32 vectors;
     doubling the set to 64 patterns (2 bit-parallel chunks) guarantees
     there is a wholly-redundant tail for the early exit to skip *)
  let pats = Faultsim.exhaustive_patterns 5 in
  let pats = Array.append pats pats in
  let totals =
    [
      ("serial", (fun obs -> Faultsim.run_serial ~obs u pats), Faultsim.n_sites u * 64);
      ("parallel", (fun obs -> Faultsim.run_parallel ~obs u pats), Faultsim.n_sites u * 2);
    ]
  in
  List.iter
    (fun (name, run, expected_total) ->
      let sink, fetch = Obs.memory_sink () in
      let s = run (Obs.make sink) in
      let e = run_event fetch in
      let evals = Option.get (field_int e "evals") in
      let saved = Option.get (field_int e "evals_saved") in
      check_i (name ^ ": evals + saved = full workload") expected_total (evals + saved);
      check (name ^ ": exit actually saved work") true (saved > 0);
      check (name ^ ": detections match no-drop") true
        (s.Faultsim.first_detection
        = (Faultsim.run_serial ~drop:false u pats).Faultsim.first_detection))
    totals;
  (* deductive and concurrent also stop early and report the saving *)
  List.iter
    (fun (name, run) ->
      let sink, fetch = Obs.memory_sink () in
      let s = run true (Obs.make sink) in
      let saved = Option.get (field_int (run_event fetch) "evals_saved") in
      check (name ^ ": early exit saved work") true (saved > 0);
      check (name ^ ": detections match no-drop") true
        (s.Faultsim.first_detection = (run false Obs.disabled).Faultsim.first_detection))
    [
      ("deductive", fun drop obs -> Faultsim.run_deductive ~drop ~obs u pats);
      ("concurrent", fun drop obs -> Faultsim.run_concurrent ~drop ~obs u pats);
    ]

(* Deductive dropping must also cut the per-gate propagation work:
   dropped sites are excluded from candidate filtering, so a multi-output
   circuit (where lists stay populated after a first detection) performs
   strictly fewer eval_fn calls under drop. *)
let test_deductive_drop_saves_evals () =
  let nl = Generators.ripple_adder ~style:`Domino 3 in
  let u = Faultsim.universe nl in
  let prng = Prng.create 67 in
  let pats =
    Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count:100
  in
  List.iter
    (fun (name, run) ->
      let evals drop =
        let sink, fetch = Obs.memory_sink () in
        ignore (run drop (Obs.make sink));
        Option.get (field_int (run_event fetch) "evals")
      in
      check (name ^ ": dropping cuts evals") true (evals true < evals false))
    [
      ("deductive", fun drop obs -> Faultsim.run_deductive ~drop ~obs u pats);
      ("concurrent", fun drop obs -> Faultsim.run_concurrent ~drop ~obs u pats);
    ]

(* The domain clamp: requested domains are a ceiling, cut down to the
   job count and (by default) to the estimated work. *)
let test_domain_clamp () =
  let u = fig9_u () in
  (* 10 sites *)
  let pats = Faultsim.exhaustive_patterns 5 in
  let eff ?min_work_per_domain n =
    let _, st =
      Faultsim.run_domain_parallel_stats ?min_work_per_domain ~num_domains:n u pats
    in
    st.Parallel_exec.effective_domains
  in
  check_i "job clamp: 32 requested, 10 sites" 10 (eff ~min_work_per_domain:0 32);
  check_i "no clamp below job count" 4 (eff ~min_work_per_domain:0 4);
  (* fig9 x 32 patterns is far below the default work threshold: the
     engine must refuse to spawn extra domains for it. *)
  check_i "work clamp collapses a tiny workload" 1 (eff 8);
  let _, st =
    Faultsim.run_domain_parallel_stats ~num_domains:8 ~min_work_per_domain:0 u pats
  in
  check_i "requested recorded" 8 st.Parallel_exec.requested_domains;
  check "work estimate positive" true (st.Parallel_exec.work_estimate > 0)


(* --- Robustness: supervision, limits, checkpoint/resume ---------------------- *)

(* A crash hook that raises for one victim site the first [transients]
   times that site comes up for evaluation.  Keyed on the site id and
   counted atomically, so it serves both the serial engines (hook called
   per pattern) and the domain pool (hook called per job evaluation,
   possibly from several domains). *)
let crashing_hook ~victim ~transients =
  let hits = Atomic.make 0 in
  fun sid ->
    if sid = victim then
      if Atomic.fetch_and_add hits 1 < transients then failwith "injected crash"

let always_crashing ~victim =
  fun sid -> if sid = victim then failwith "injected permanent crash"

let robustness_fixture () =
  let nl =
    Generators.random_monotone ~seed:3 ~n_inputs:8 ~n_gates:30
      ~technology:Technology.Domino_cmos ()
  in
  let u = Faultsim.universe nl in
  let prng = Prng.create 71 in
  let pats = Faultsim.random_patterns prng ~n_inputs:8 ~count:100 in
  (u, pats)

let supervised_engines =
  [
    ( "serial/cone",
      fun ~crash_hook u pats ->
        Faultsim.run_serial ~drop:false ~algo:`Cone ~crash_hook u pats );
    ( "serial/full",
      fun ~crash_hook u pats ->
        Faultsim.run_serial ~drop:false ~algo:`Full ~crash_hook u pats );
    ( "parallel/cone",
      fun ~crash_hook u pats ->
        Faultsim.run_parallel ~drop:false ~algo:`Cone ~crash_hook u pats );
    ( "domains/cone",
      fun ~crash_hook u pats ->
        Faultsim.run_domain_parallel ~drop:false ~algo:`Cone ~num_domains:2
          ~min_work_per_domain:0 ~crash_hook u pats );
    ( "domains/full",
      fun ~crash_hook u pats ->
        Faultsim.run_domain_parallel ~drop:false ~algo:`Full ~num_domains:2
          ~min_work_per_domain:0 ~crash_hook u pats );
  ]

(* A site that crashes transiently (fewer times than the attempt budget)
   is retried and the whole summary — including the victim — is
   bit-identical to a clean run, with a [Complete] outcome.  The cone
   variants also exercise the baseline-restore path: a corrupted good
   machine would change *other* sites' results. *)
let test_transient_crash_recovered () =
  let u, pats = robustness_fixture () in
  let clean = Faultsim.run_serial ~drop:false ~algo:`Full u pats in
  let victim = Faultsim.n_sites u / 2 in
  List.iter
    (fun (name, run) ->
      let s = run ~crash_hook:(crashing_hook ~victim ~transients:2) u pats in
      check (name ^ ": complete outcome") true (Outcome.is_complete s.Faultsim.outcome);
      check (name ^ ": bit-identical to clean run") true
        (s.Faultsim.first_detection = clean.Faultsim.first_detection))
    supervised_engines

(* A site that keeps crashing is excluded and reported; every other
   site's detections are identical to the clean run and never lost. *)
let test_permanent_crash_isolated () =
  let u, pats = robustness_fixture () in
  let clean = Faultsim.run_serial ~drop:false ~algo:`Full u pats in
  let victim = 3 in
  List.iter
    (fun (name, run) ->
      let s = run ~crash_hook:(always_crashing ~victim) u pats in
      (match s.Faultsim.outcome with
      | Outcome.Partial { Outcome.failed_sites = [ (sid, msg) ]; stopped = None } ->
          check_i (name ^ ": victim reported") victim sid;
          check (name ^ ": message survives") true (contains msg "injected permanent")
      | _ -> Alcotest.fail (name ^ ": expected exactly one failed site"));
      check (name ^ ": victim slot unset") true (s.Faultsim.first_detection.(victim) = None);
      check (name ^ ": other sites unharmed") true
        (Array.for_all
           (fun i -> i = victim || s.Faultsim.first_detection.(i) = clean.Faultsim.first_detection.(i))
           (Array.init (Faultsim.n_sites u) Fun.id));
      check_i (name ^ ": sites_done excludes victim") (Faultsim.n_sites u - 1)
        s.Faultsim.sites_done;
      check_i (name ^ ": exit code 2") 2 (Outcome.exit_code s.Faultsim.outcome))
    supervised_engines

(* Every engine under every limit kind stops cleanly with the right
   cause, keeps the detections gathered so far (each a verbatim prefix
   fact of the reference run), and reports coverage as a lower bound. *)
type limited_run =
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  Faultsim.universe ->
  bool array array ->
  Faultsim.summary

let limited_engines : (string * limited_run) list =
  [
    ( "serial",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_serial ?deadline ?max_evals ?interrupt u pats );
    ( "parallel",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_parallel ?deadline ?max_evals ?interrupt u pats );
    ( "deductive",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_deductive ?deadline ?max_evals ?interrupt u pats );
    ( "concurrent",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_concurrent ?deadline ?max_evals ?interrupt u pats );
    ( "domains",
      fun ?deadline ?max_evals ?interrupt u pats ->
        Faultsim.run_domain_parallel ~num_domains:2 ~min_work_per_domain:0 ?deadline
          ?max_evals ?interrupt u pats );
  ]

let check_partial name reference expected_cause (s : Faultsim.summary) =
  (match s.Faultsim.outcome with
  | Outcome.Partial { Outcome.stopped = Some c; failed_sites = [] } ->
      check (name ^ ": stop cause") true (c = expected_cause)
  | o -> Alcotest.fail (Fmt.str "%s: expected a stopped partial, got %s" name (Outcome.to_string o)));
  (* nothing invented: every detection the partial run reports is the
     reference run's detection for that site *)
  check (name ^ ": detections are a subset of the reference") true
    (Array.for_all2
       (fun p r -> p = None || p = r)
       s.Faultsim.first_detection reference.Faultsim.first_detection);
  check (name ^ ": coverage is a lower bound") true
    (Faultsim.coverage s <= Faultsim.coverage reference);
  check_i (name ^ ": exit code 2") 2 (Outcome.exit_code s.Faultsim.outcome)

let test_deadline_partial () =
  let u, pats = robustness_fixture () in
  let reference = Faultsim.run_serial ~drop:false ~algo:`Full u pats in
  let past = Unix.gettimeofday () -. 1.0 in
  List.iter
    (fun (name, (run : limited_run)) ->
      check_partial name reference Outcome.Deadline (run ~deadline:past u pats))
    limited_engines

let test_max_evals_partial () =
  let u, pats = robustness_fixture () in
  let reference = Faultsim.run_serial ~drop:false ~algo:`Full u pats in
  List.iter
    (fun (name, (run : limited_run)) ->
      let s = run ~max_evals:50 u pats in
      check_partial name reference Outcome.Max_evals s;
      check (name ^ ": stopped before the end") true
        (s.Faultsim.patterns_done < Array.length pats))
    limited_engines

let test_interrupt_partial () =
  let u, pats = robustness_fixture () in
  let reference = Faultsim.run_serial ~drop:false ~algo:`Full u pats in
  List.iter
    (fun (name, (run : limited_run)) ->
      check_partial name reference Outcome.Interrupted
        (run ~interrupt:(fun () -> true) u pats))
    limited_engines

(* An unreachable limit changes nothing: outcome stays [Complete] and the
   summary is bit-identical to the unlimited run. *)
let test_lax_limits_are_free () =
  let u, pats = robustness_fixture () in
  let reference = Faultsim.run_serial ~drop:false ~algo:`Full u pats in
  List.iter
    (fun (name, (run : limited_run)) ->
      let s =
        run ~deadline:(Unix.gettimeofday () +. 3600.0) ~max_evals:max_int
          ~interrupt:(fun () -> false) u pats
      in
      check (name ^ ": complete") true (Outcome.is_complete s.Faultsim.outcome);
      check (name ^ ": identical results") true
        (s.Faultsim.first_detection = reference.Faultsim.first_detection);
      check_i (name ^ ": exit code 0") 0 (Outcome.exit_code s.Faultsim.outcome))
    limited_engines

(* --- Checkpoint/resume ------------------------------------------------------- *)

let with_temp_checkpoint f =
  let path = Filename.temp_file "dynmos_ckpt" ".dat" in
  Sys.remove path;
  (* engines write it themselves (atomic rename) *)
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* Interrupt a campaign partway, then resume from the checkpoint file:
   the combined runs must be bit-identical to one uninterrupted run, the
   resumed run must be [Complete], and no pattern may be evaluated twice
   (checked through the evals counter for the serial engine). *)
let test_checkpoint_resume_serial () =
  let u, pats = robustness_fixture () in
  let reference = Faultsim.run_serial ~drop:false u pats in
  List.iter
    (fun algo ->
      with_temp_checkpoint @@ fun path ->
      let ctl = Faultsim.checkpoint_ctl ~path ~interval:7 u pats in
      let s1 = Faultsim.run_serial ~drop:false ~algo ~max_evals:400 ~checkpoint:ctl u pats in
      check "first leg stopped" true (not (Outcome.is_complete s1.Faultsim.outcome));
      check "first leg left a checkpoint" true (Sys.file_exists path);
      let ctl2 = Faultsim.checkpoint_ctl ~path ~interval:7 ~resume:true u pats in
      let s2 = Faultsim.run_serial ~drop:false ~algo ~checkpoint:ctl2 u pats in
      check "resumed leg complete" true (Outcome.is_complete s2.Faultsim.outcome);
      check "combined = uninterrupted" true
        (s2.Faultsim.first_detection = reference.Faultsim.first_detection))
    [ `Cone; `Full ]

let test_checkpoint_resume_domains () =
  let u, pats = robustness_fixture () in
  let reference = Faultsim.run_serial ~drop:false u pats in
  with_temp_checkpoint @@ fun path ->
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:3 u pats in
  let s1 =
    Faultsim.run_domain_parallel ~drop:false ~num_domains:2 ~min_work_per_domain:0
      ~max_evals:400 ~checkpoint:ctl u pats
  in
  check "first leg stopped" true (not (Outcome.is_complete s1.Faultsim.outcome));
  check "sites-mode progress recorded" true (s1.Faultsim.sites_done < Faultsim.n_sites u);
  let ctl2 = Faultsim.checkpoint_ctl ~path ~interval:3 ~resume:true u pats in
  let s2 =
    Faultsim.run_domain_parallel ~drop:false ~num_domains:2 ~min_work_per_domain:0
      ~checkpoint:ctl2 u pats
  in
  check "resumed leg complete" true (Outcome.is_complete s2.Faultsim.outcome);
  check "combined = uninterrupted" true
    (s2.Faultsim.first_detection = reference.Faultsim.first_detection)

let raises_checkpoint_error f =
  match f () with exception Checkpoint.Error _ -> true | _ -> false

(* Digest pinning: a checkpoint written for one campaign must refuse to
   resume another circuit or pattern set; a pattern-mode file must refuse
   a sites-sweep engine. *)
let test_checkpoint_validation () =
  let u, pats = robustness_fixture () in
  with_temp_checkpoint @@ fun path ->
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:5 u pats in
  ignore (Faultsim.run_serial ~drop:false ~checkpoint:ctl u pats);
  check "resume with other patterns refused" true
    (raises_checkpoint_error (fun () ->
         let prng = Prng.create 999 in
         let other = Faultsim.random_patterns prng ~n_inputs:8 ~count:100 in
         Faultsim.checkpoint_ctl ~path ~interval:5 ~resume:true u other));
  check "resume with another circuit refused" true
    (raises_checkpoint_error (fun () ->
         let u2 = Faultsim.universe (Generators.c17 ~style:`Domino ()) in
         Faultsim.checkpoint_ctl ~path ~interval:5 ~resume:true u2 pats));
  (* mode mismatch: the file is pattern-mode, the domains engine sweeps sites *)
  let ctl2 = Faultsim.checkpoint_ctl ~path ~interval:5 ~resume:true u pats in
  check "pattern-mode file refused by the sites-sweep engine" true
    (raises_checkpoint_error (fun () ->
         Faultsim.run_domain_parallel ~num_domains:1 ~min_work_per_domain:0
           ~checkpoint:ctl2 u pats))

(* A crash-torn checkpoint (truncated mid-write would only ever be the
   .tmp file thanks to the atomic rename, but disks corrupt too) is
   detected by the checksum trailer and reported as truncation, never
   parsed into a half-resumed campaign. *)
let test_checkpoint_truncation_detected () =
  let u, pats = robustness_fixture () in
  with_temp_checkpoint @@ fun path ->
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:5 u pats in
  ignore (Faultsim.run_serial ~drop:false ~checkpoint:ctl u pats);
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 17));
  close_out oc;
  match Checkpoint.load path with
  | exception Checkpoint.Error msg ->
      check "reported as truncation/corruption" true
        (contains msg "truncated" || contains msg "checksum")
  | _ -> Alcotest.fail "truncated checkpoint must not load"

(* QCheck: checkpoint round-trip on random circuits — stop a campaign
   with a tiny evaluation budget, resume from the file, and the combined
   detections are bit-identical to an uninterrupted run, for both
   injection algorithms and for the sites-sweep domains engine. *)
let qcheck_checkpoint_roundtrip =
  QCheck2.Test.make ~name:"checkpoint resume is bit-identical" ~count:15
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 4 8))
    (fun (seed, n_inputs) ->
      let nl =
        Generators.random_monotone ~seed ~n_inputs ~n_gates:15
          ~technology:Technology.Domino_cmos ()
      in
      let u = Faultsim.universe nl in
      let prng = Prng.create seed in
      let pats = Faultsim.random_patterns prng ~n_inputs ~count:60 in
      let reference = Faultsim.run_serial ~drop:false u pats in
      let roundtrip run =
        with_temp_checkpoint @@ fun path ->
        let ctl = Faultsim.checkpoint_ctl ~path ~interval:2 u pats in
        ignore (run ~max_evals:(Some 60) ~checkpoint:ctl u pats);
        let ctl2 = Faultsim.checkpoint_ctl ~path ~interval:2 ~resume:true u pats in
        let s = run ~max_evals:None ~checkpoint:ctl2 u pats in
        Outcome.is_complete s.Faultsim.outcome
        && s.Faultsim.first_detection = reference.Faultsim.first_detection
      in
      List.for_all roundtrip
        [
          (fun ~max_evals ~checkpoint u pats ->
            Faultsim.run_serial ~drop:false ~algo:`Cone ?max_evals ~checkpoint u pats);
          (fun ~max_evals ~checkpoint u pats ->
            Faultsim.run_serial ~drop:false ~algo:`Full ?max_evals ~checkpoint u pats);
          (fun ~max_evals ~checkpoint u pats ->
            Faultsim.run_parallel ~drop:false ~algo:`Cone ?max_evals ~checkpoint u pats);
          (fun ~max_evals ~checkpoint u pats ->
            Faultsim.run_domain_parallel ~drop:false ~num_domains:2 ~min_work_per_domain:0
              ?max_evals ~checkpoint u pats);
        ])

(* --- Diagnosis ------------------------------------------------------------- *)

let test_diagnosis_dictionary () =
  let u = fig9_u () in
  let pats = Faultsim.exhaustive_patterns 5 in
  let dict = Diagnosis.dictionary u pats in
  (* the exhaustive dictionary resolves every class down to itself *)
  Array.iter
    (fun site ->
      match Diagnosis.diagnose_site dict site with
      | [ s ] -> check_i "unique diagnosis" site.Faultsim.sid s.Faultsim.sid
      | l -> Alcotest.fail (Fmt.str "ambiguous diagnosis (%d candidates)" (List.length l)))
    u.Faultsim.sites;
  (* the fault-free machine is recognized as such *)
  let good = Array.map (fun p -> Diagnosis.pack_outputs (Dynmos_sim.Compiled.eval u.Faultsim.compiled p)) pats in
  check "fault-free recognized" true (Diagnosis.looks_fault_free dict good);
  check "fault-free diagnoses to nothing" true (Diagnosis.diagnose dict good = [])

let test_diagnosis_distinguishable () =
  (* The Section-5 table's classes are mutually distinguishable — that is
     what makes them *classes*. *)
  let u = fig9_u () in
  check "fig9 classes pairwise distinguishable" true (Diagnosis.pairwise_distinguishable u);
  (* two specific classes and their separating pattern *)
  let site_of cid =
    Array.to_list u.Faultsim.sites
    |> List.find (fun s -> s.Faultsim.entry.Faultlib.class_id = cid)
  in
  match Diagnosis.distinguishing_pattern u (site_of 9) (site_of 10) with
  | Some _ -> check "stuck-0 vs stuck-1 separable" true true
  | None -> Alcotest.fail "expected distinguishing pattern"

let test_diagnosis_groups () =
  let u = fig9_u () in
  (* With a single pattern, most classes are indistinguishable; groups
     must partition all sites. *)
  let dict1 = Diagnosis.dictionary u [| [| true; true; false; false; false |] |] in
  let groups = Diagnosis.equivalence_groups dict1 in
  let total = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
  check_i "partition covers all sites" (Faultsim.n_sites u) total;
  check "coarser than exhaustive" true (List.length groups < Faultsim.n_sites u)

let test_diagnosing_patterns () =
  let u = fig9_u () in
  let pats, groups = Diagnosis.diagnosing_patterns u in
  (* greedy adaptive set: a handful of vectors fully separates the 10
     classes of fig9 (they are pairwise distinguishable) *)
  check "all groups singleton" true (List.for_all (fun g -> List.length g = 1) groups);
  check "compact set" true (Array.length pats <= 10);
  (* and it really diagnoses *)
  let dict = Diagnosis.dictionary u pats in
  Array.iter
    (fun site ->
      match Diagnosis.diagnose_site dict site with
      | [ s ] -> check_i "unique" site.Faultsim.sid s.Faultsim.sid
      | _ -> Alcotest.fail "ambiguous under diagnosing set")
    u.Faultsim.sites

(* QCheck: structural properties of the compile-time fanout analysis on
   random circuits — every cone starts with its own gate, is strictly
   ascending (= topologically ordered, since gate ids are a topological
   order), is transitively closed over the consumer relation, and
   reachable_outputs is exactly the set of POs driven from cone gates. *)
let qcheck_cone_structure =
  QCheck2.Test.make ~name:"fanout cones closed, ordered, PO-consistent" ~count:30
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 4 8))
    (fun (seed, n_inputs) ->
      let nl =
        Generators.random_monotone ~seed ~n_inputs ~n_gates:15
          ~technology:Technology.Domino_cmos ()
      in
      let c = Compiled.compile nl in
      let n_g = Compiled.n_gates c in
      let n_in = Compiled.n_inputs c in
      let cg = Compiled.gates c in
      let po = Compiled.po_indices c in
      let sorted a =
        let a = Array.copy a in
        Array.sort compare a;
        a
      in
      let ok = ref true in
      let widest = ref 0 in
      for g0 = 0 to n_g - 1 do
        let cone = Compiled.fanout_cone c g0 in
        widest := max !widest (Array.length cone);
        if Array.length cone = 0 || cone.(0) <> g0 then ok := false;
        for i = 1 to Array.length cone - 1 do
          if cone.(i) <= cone.(i - 1) then ok := false
        done;
        let mem = Array.make n_g false in
        Array.iter (fun g -> mem.(g) <- true) cone;
        (* closure: any gate consuming a cone member's output is a member *)
        Array.iter
          (fun g ->
            let out = cg.(g).Compiled.out in
            Array.iteri
              (fun h ch ->
                if Array.exists (( = ) out) ch.Compiled.ins && not mem.(h) then ok := false)
              cg)
          cone;
        (* reachable outputs = the PO positions driven by cone gates *)
        let expected = ref [] in
        Array.iteri
          (fun k p -> if p >= n_in && mem.(p - n_in) then expected := k :: !expected)
          po;
        if
          sorted (Compiled.reachable_outputs c g0)
          <> sorted (Array.of_list !expected)
        then ok := false
      done;
      !ok && !widest = Compiled.max_cone_size c)

(* QCheck: PPSFP differential — first detections equal the bit-parallel
   engine's on random circuits x random group sizes, for both algorithms
   and both drop settings. *)
let qcheck_ppsfp_differential =
  QCheck2.Test.make ~name:"ppsfp = bit-parallel on random circuits x group sizes"
    ~count:25
    QCheck2.Gen.(triple (int_range 1 1000) (int_range 4 8) (int_range 1 12))
    (fun (seed, n_inputs, group) ->
      let nl =
        Generators.random_monotone ~seed ~n_inputs ~n_gates:14
          ~technology:Technology.Domino_cmos ()
      in
      let u = Faultsim.universe nl in
      let prng = Prng.create (seed + group) in
      let pats = Faultsim.random_patterns prng ~n_inputs ~count:70 in
      let reference = Faultsim.run_parallel ~drop:false u pats in
      List.for_all
        (fun (drop, algo) ->
          (Faultsim.run_ppsfp ~drop ~algo ~group u pats).Faultsim.first_detection
          = reference.Faultsim.first_detection)
        [ (false, `Cone); (false, `Full); (true, `Cone); (true, `Full) ])

(* QCheck: engine agreement on random monotone circuits and patterns. *)
let qcheck_engines =
  QCheck2.Test.make ~name:"engines agree on random circuits" ~count:20
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 4 8))
    (fun (seed, n_inputs) ->
      let nl =
        Generators.random_monotone ~seed ~n_inputs ~n_gates:10
          ~technology:Technology.Domino_cmos ()
      in
      let u = Faultsim.universe nl in
      let prng = Prng.create seed in
      let pats = Faultsim.random_patterns prng ~n_inputs ~count:50 in
      engines_agree u pats)

let () =
  Alcotest.run "faultsim"
    [
      ( "universe",
        [
          Alcotest.test_case "fig9 sites" `Quick test_universe_fig9;
          Alcotest.test_case "library sharing" `Quick test_universe_shares_libraries;
          Alcotest.test_case "single detection" `Quick test_detects;
          Alcotest.test_case "structural validation" `Quick test_validate_universe;
          Alcotest.test_case "gate restriction" `Quick test_restrict_universe;
        ] );
      ( "engines",
        [
          Alcotest.test_case "agree on fig9 (exhaustive)" `Quick test_engines_agree_fig9;
          Alcotest.test_case "agree on benchmarks" `Quick test_engines_agree_benchmarks;
          Alcotest.test_case "agree at word-boundary pattern counts" `Quick
            test_engines_agree_edge_counts;
          Alcotest.test_case "agree on multi-output circuits" `Quick
            test_engines_agree_multi_output;
          Alcotest.test_case "exhaustive full coverage" `Quick test_exhaustive_full_coverage;
          Alcotest.test_case "coverage monotone in patterns" `Quick test_more_patterns_dont_hurt;
          Alcotest.test_case "fault dropping consistent" `Quick test_drop_consistency;
        ] );
      ( "fanout-cone",
        [
          Alcotest.test_case "reconvergent circuit" `Quick test_cone_reconvergent;
          Alcotest.test_case "reconvergent random circuits" `Quick test_cone_reconvergent_random;
          Alcotest.test_case "propagation engines: cone = full" `Quick
            test_propagation_cone_differential;
        ] );
      ( "domain-parallel",
        [
          Alcotest.test_case "equal across domain counts" `Quick test_domain_counts_equal;
          Alcotest.test_case "drop/no-drop identical" `Quick test_domain_drop_semantics;
          Alcotest.test_case "degenerate shapes" `Quick test_domain_empty_universe;
        ] );
      ( "ppsfp",
        [
          Alcotest.test_case "group sizes all agree" `Quick test_ppsfp_group_sizes;
          Alcotest.test_case "compaction never re-simulates" `Quick
            test_ppsfp_compaction_never_resimulates;
          Alcotest.test_case "restricted universes" `Quick test_ppsfp_restricted_universe;
          Alcotest.test_case "word matrix = scalar evaluator" `Quick
            test_word_matrix_matches_scalar;
        ] );
      ( "results",
        [
          Alcotest.test_case "coverage curve" `Quick test_coverage_curve;
          Alcotest.test_case "weighted patterns" `Quick test_weighted_patterns;
          Alcotest.test_case "exhaustive patterns" `Quick test_exhaustive_patterns;
        ] );
      ( "validation",
        [
          Alcotest.test_case "exhaustive bounds" `Quick test_exhaustive_bounds;
          Alcotest.test_case "random_patterns arguments" `Quick test_random_patterns_validation;
        ] );
      ( "observability",
        [
          Alcotest.test_case "obs on/off parity" `Quick test_obs_parity;
          Alcotest.test_case "eval counters reconcile with serial" `Quick
            test_obs_eval_reconciliation;
          Alcotest.test_case "unified totals across engines" `Quick
            test_unified_accounting_totals;
          Alcotest.test_case "cone cuts gate evals, not invocations" `Quick test_cone_gate_evals;
          Alcotest.test_case "all-detected early exit accounting" `Quick
            test_early_exit_accounting;
          Alcotest.test_case "deductive/concurrent dropping cuts evals" `Quick
            test_deductive_drop_saves_evals;
          Alcotest.test_case "domain clamp" `Quick test_domain_clamp;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "transient crashes recovered" `Quick
            test_transient_crash_recovered;
          Alcotest.test_case "permanent crashes isolated" `Quick
            test_permanent_crash_isolated;
          Alcotest.test_case "deadline stops cleanly" `Quick test_deadline_partial;
          Alcotest.test_case "eval budget stops cleanly" `Quick test_max_evals_partial;
          Alcotest.test_case "interrupt stops cleanly" `Quick test_interrupt_partial;
          Alcotest.test_case "lax limits change nothing" `Quick test_lax_limits_are_free;
          Alcotest.test_case "checkpoint/resume serial" `Quick test_checkpoint_resume_serial;
          Alcotest.test_case "checkpoint/resume domains" `Quick
            test_checkpoint_resume_domains;
          Alcotest.test_case "checkpoint digests pin the campaign" `Quick
            test_checkpoint_validation;
          Alcotest.test_case "truncated checkpoint detected" `Quick
            test_checkpoint_truncation_detected;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "exhaustive dictionary" `Quick test_diagnosis_dictionary;
          Alcotest.test_case "pairwise distinguishable" `Quick test_diagnosis_distinguishable;
          Alcotest.test_case "equivalence groups" `Quick test_diagnosis_groups;
          Alcotest.test_case "adaptive diagnosing set" `Quick test_diagnosing_patterns;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_engines;
          QCheck_alcotest.to_alcotest qcheck_ppsfp_differential;
          QCheck_alcotest.to_alcotest qcheck_cone_structure;
          QCheck_alcotest.to_alcotest qcheck_checkpoint_roundtrip;
        ] );
    ]
