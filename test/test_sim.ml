open Dynmos_expr
open Dynmos_cell
open Dynmos_core
open Dynmos_netlist
open Dynmos_sim
open Dynmos_circuits

(* Tests for the simulation layer: compiled evaluation, the charge-level
   gate simulators (Fig. 1 and the combinationality theorem), event-driven
   glitch counting (Fig. 5), timing (Fig. 2 / CMOS-3b) and the power
   model. *)

let check = Alcotest.(check bool)

let e = Parse.expr

(* --- Compiled evaluation -------------------------------------------------- *)

let test_compiled_vs_reference () =
  let nl = Generators.c17 ~style:`Static () in
  let c = Compiled.compile nl in
  let n = Compiled.n_inputs c in
  for row = 0 to (1 lsl n) - 1 do
    let pi = Array.init n (fun i -> (row lsr i) land 1 = 1) in
    if Compiled.eval c pi <> Compiled.eval_reference c pi then
      Alcotest.fail (Fmt.str "mismatch at row %d" row)
  done;
  check "c17 ok" true true

let test_eval_words_packing () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 4 in
  let c = Compiled.compile nl in
  let n = Compiled.n_inputs c in
  (* Pack two complementary patterns into bits 0 and 1 of each PI word. *)
  let p0 = Array.make n false in
  let p1 = Array.make n true in
  let words = Array.init n (fun i -> (if p0.(i) then 1 else 0) lor if p1.(i) then 2 else 0) in
  let out_words = Compiled.outputs_of_nets c (Compiled.eval_words c words) in
  let o0 = Compiled.eval c p0 and o1 = Compiled.eval c p1 in
  Array.iteri
    (fun k w ->
      check "bit0 matches" true (w land 1 = if o0.(k) then 1 else 0);
      check "bit1 matches" true ((w lsr 1) land 1 = if o1.(k) then 1 else 0))
    out_words

let test_override () =
  let nl = Generators.fig9_network () in
  let c = Compiled.compile nl in
  let stuck0 = Compiled.fn_of_table (Truth_table.of_expr ~vars:[| "a"; "b"; "c"; "d"; "e" |] (e "0")) in
  let gate = (Compiled.gates c).(0) in
  let pi = [| true; true; false; false; false |] in
  check "good is 1" true (Compiled.eval c pi).(0);
  check "faulty is 0" false (Compiled.eval ~override:(gate.Compiled.g.Netlist.id, stuck0) c pi).(0)

(* Cone-restricted faulty evaluation: for every gate and a batch of
   packed patterns, eval_cone_into must (a) return the exact OR over all
   POs of faulty lxor good that whole-circuit injection computes, and
   (b) leave the scratch baseline bit-identical afterwards. *)
let test_eval_cone_into () =
  let nl =
    Generators.random_monotone ~seed:9 ~n_inputs:6 ~n_gates:20
      ~technology:Technology.Domino_cmos ()
  in
  let c = Compiled.compile nl in
  let n = Compiled.n_inputs c in
  let po = Compiled.po_indices c in
  let stuck0 =
    Compiled.fn_of_table
      (Truth_table.of_expr ~vars:[| "x0"; "x1" |] (e "0"))
  in
  let prng = Dynmos_util.Prng.create 31 in
  let words = Array.init n (fun _ -> Dynmos_util.Prng.bits62 prng) in
  let scratch = Compiled.make_scratch c in
  Compiled.eval_words_into c ~scratch words;
  let baseline = Array.copy scratch in
  let buf = Compiled.make_cone_buffer c in
  for gid = 0 to Compiled.n_gates c - 1 do
    let tally = ref 0 in
    let diff = Compiled.eval_cone_into ~tally c ~override:(gid, stuck0) ~scratch ~buf in
    check (Fmt.str "gate %d: scratch restored" gid) true (scratch = baseline);
    let fscratch = Compiled.make_scratch c in
    Compiled.eval_words_into ~override:(gid, stuck0) c ~scratch:fscratch words;
    let expected = Array.fold_left (fun acc p -> acc lor (baseline.(p) lxor fscratch.(p))) 0 po in
    check (Fmt.str "gate %d: diff matches whole-circuit injection" gid) true (diff = expected);
    check (Fmt.str "gate %d: tally bounded by cone" gid) true
      (!tally >= 1 && !tally <= Array.length (Compiled.fanout_cone c gid))
  done

let test_output_expr () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 3 in
  let c = Compiled.compile nl in
  let po = List.hd (Netlist.outputs (Compiled.netlist c)) in
  let cone = Compiled.output_expr c po in
  (* c3 = g2 + p2*(g1 + p1*(g0 + p0*c0)) *)
  check "cone formula" true
    (Truth_table.equal_exprs cone (e "g2+p2*(g1+p1*(g0+p0*c0))"))

(* --- Charge-level: Fig. 1 -------------------------------------------------- *)

let test_fig1_table () =
  (* The NOR function table of Fig. 1: fault-free Z vs faulty Z with the
     A pull-down open.  Faulty column: 1, 0, Z(t), 0. *)
  let nor = Stdcells.fig1_nor in
  let fault = Fault.Network_open 1 in
  let vectors = [ [ false; false ]; [ false; true ]; [ true; false ]; [ true; true ] ] in
  let good =
    List.map (fun v -> snd (Charge_sim.static_step nor Charge_sim.static_initial v)) vectors
  in
  check "good NOR column" true
    (List.for_all2 Logic.equal good [ Logic.One; Logic.Zero; Logic.Zero; Logic.Zero ]);
  (* Faulty, starting from stored 1 and stored 0: rows 00,01,11 are solid,
     row 10 shows the memory. *)
  let faulty_from stored v =
    snd (Charge_sim.static_step ~fault nor { Charge_sim.out = Charge_sim.Driven stored } v)
  in
  check "00 -> 1" true (Logic.equal (faulty_from false [ false; false ]) Logic.One);
  check "01 -> 0" true (Logic.equal (faulty_from true [ false; true ]) Logic.Zero);
  check "11 -> 0" true (Logic.equal (faulty_from true [ true; true ]) Logic.Zero);
  check "10 -> Z(t)=1" true (Logic.equal (faulty_from true [ true; false ]) Logic.One);
  check "10 -> Z(t)=0" true (Logic.equal (faulty_from false [ true; false ]) Logic.Zero)

let test_static_contention_is_x () =
  (* Pull-up stuck closed on an inverter with symmetric strengths: X at
     a=1. *)
  let inv = Stdcells.fig2_inverter in
  let _, out =
    Charge_sim.static_step ~fault:(Fault.Pullup_closed 1) inv Charge_sim.static_initial [ true ]
  in
  check "contention X" true (Logic.equal out Logic.X)

(* --- Charge-level: the combinationality theorem ----------------------------- *)

let cells_under_test =
  [
    Stdcells.fig9;
    Stdcells.and_gate 2 Technology.Domino_cmos;
    Stdcells.or_gate 3 Technology.Domino_cmos;
    Stdcells.ao ~groups:[ 2; 2 ] Technology.Domino_cmos;
    Stdcells.oa ~groups:[ 1; 2 ] Technology.Domino_cmos;
    Stdcells.mux2_dual_rail Technology.Domino_cmos;
  ]

let nmos_cells_under_test =
  [
    Stdcells.nand 2 Technology.Dynamic_nmos;
    Stdcells.nor 3 Technology.Dynamic_nmos;
    Stdcells.ao ~groups:[ 2; 1 ] Technology.Dynamic_nmos;
  ]

let test_domino_always_combinational () =
  List.iter
    (fun cell ->
      check (Fmt.str "%s fault-free" (Cell.name cell)) true
        (Charge_sim.domino_combinational cell);
      List.iter
        (fun f ->
          check
            (Fmt.str "%s / %s" (Cell.name cell) (Fault.label cell f))
            true
            (Charge_sim.domino_combinational ~fault:f cell))
        (Fault.enumerate cell))
    cells_under_test

let test_nmos_always_combinational () =
  List.iter
    (fun cell ->
      List.iter
        (fun f ->
          check
            (Fmt.str "%s / %s" (Cell.name cell) (Fault.label cell f))
            true
            (Charge_sim.nmos_combinational ~fault:f cell))
        (Fault.enumerate cell))
    nmos_cells_under_test

let test_static_is_sequential () =
  (* The negative control: stuck-open static gates are sequential. *)
  let nor = Stdcells.fig1_nor in
  check "fault-free not sequential" false (Charge_sim.static_sequential nor);
  check "stuck-open sequential" true
    (Charge_sim.static_sequential ~fault:(Fault.Network_open 1) nor);
  check "pull-up open sequential" true
    (Charge_sim.static_sequential ~fault:(Fault.Pullup_open 2) nor)

(* The observed faulty function equals Fault_map's prediction, for every
   fault of every cell whose mapping is combinational. *)
let observed_matches_map cell =
  List.for_all
    (fun f ->
      match Fault_map.map cell f with
      | Fault_map.Combinational predicted ->
          let obs = Charge_sim.observed_function ~fault:f cell in
          let inputs = Cell.inputs cell in
          List.for_all
            (fun (v, out) ->
              let env name =
                let rec go ns vs =
                  match (ns, vs) with
                  | n :: _, b :: _ when String.equal n name -> b
                  | _ :: ns, _ :: vs -> go ns vs
                  | _ -> invalid_arg "env"
                in
                go inputs v
              in
              match out with
              | Logic.X -> false
              | o -> Logic.equal o (Logic.of_bool (Expr.eval env predicted)))
            obs
      | _ -> true)
    (Fault.enumerate cell)

let test_observed_equals_predicted () =
  List.iter
    (fun cell ->
      check (Fmt.str "%s (domino)" (Cell.name cell)) true (observed_matches_map cell))
    cells_under_test;
  List.iter
    (fun cell ->
      check (Fmt.str "%s (nMOS)" (Cell.name cell)) true (observed_matches_map cell))
    nmos_cells_under_test

(* QCheck: the central theorem over random switching networks — every
   physical fault of a randomly generated domino cell stays combinational
   at charge level and exhibits exactly the predicted faulty function. *)
let gen_sp_expr =
  let open QCheck2.Gen in
  let var = map (fun i -> Expr.var (Fmt.str "v%d" i)) (int_bound 3) in
  sized
  @@ fix (fun self n ->
         if n <= 1 then var
         else
           frequency
             [
               (2, var);
               (3, map2 (fun a b -> Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2)));
               (3, map2 (fun a b -> Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2)));
             ])

let qcheck_charge_theorem =
  QCheck2.Test.make ~name:"charge-level theorem on random domino cells" ~count:30 gen_sp_expr
    (fun expr ->
      match
        Cell.make ~technology:Technology.Domino_cmos ~inputs:(Expr.support expr) ~output:"zz"
          [ ("zz", expr) ]
      with
      | exception Cell.Invalid _ -> true
      | cell ->
          Cell.arity cell > 4 (* keep the state enumeration cheap *)
          || List.for_all
               (fun f ->
                 Charge_sim.domino_combinational ~fault:f cell
                 &&
                 match Fault_map.map cell f with
                 | Fault_map.Combinational predicted ->
                     List.for_all
                       (fun (v, out) ->
                         let env name =
                           let rec go ns vs =
                             match (ns, vs) with
                             | n :: _, b :: _ when String.equal n name -> b
                             | _ :: ns, _ :: vs -> go ns vs
                             | _ -> invalid_arg "env"
                           in
                           go (Cell.inputs cell) v
                         in
                         match out with
                         | Logic.X -> false
                         | o -> Logic.equal o (Logic.of_bool (Expr.eval env predicted)))
                       (Charge_sim.observed_function ~fault:f cell)
                 | _ -> true)
               (Fault.enumerate cell))

(* --- Event simulation: Fig. 5 (no races and spikes) ------------------------- *)

let test_domino_monotone_vs_static_glitch () =
  let bn = Generators.parity_boolnet 4 in
  let static = Boolnet.to_static ~name:"par_static" bn in
  let cs = Compiled.compile static in
  let sim = Event_sim.create cs in
  (* Walk a Gray-code-breaking sequence and accumulate glitches. *)
  let glitches = ref 0 in
  Event_sim.settle sim (Array.make 4 false);
  for row = 0 to 15 do
    let pi = Array.init 4 (fun i -> (row lsr i) land 1 = 1) in
    let transitions, _ = Event_sim.apply sim pi in
    glitches := !glitches + Event_sim.glitch_count transitions
  done;
  check "static parity glitches" true (!glitches > 0);
  (* Domino: every net transitions at most once per evaluation. *)
  let domino = Boolnet.to_domino_dual_rail ~name:"par_domino" bn in
  let cd = Compiled.compile domino in
  let ok = ref true in
  for row = 0 to 15 do
    let pi = Array.init 4 (fun i -> (row lsr i) land 1 = 1) in
    let dr = Boolnet.dual_rail_vector bn pi in
    let transitions, _ = Event_sim.domino_evaluate cd dr in
    Array.iter (fun t -> if t > 1 then ok := false) transitions
  done;
  check "domino monotone" true !ok

let test_domino_evaluate_correct () =
  let bn = Generators.ripple_adder_boolnet 2 in
  let domino = Boolnet.to_domino_dual_rail bn in
  let cd = Compiled.compile domino in
  let names = bn.Boolnet.inputs in
  for row = 0 to (1 lsl List.length names) - 1 do
    let pi = Array.of_list (List.mapi (fun i _ -> (row lsr i) land 1 = 1) names) in
    let dr = Boolnet.dual_rail_vector bn pi in
    let _, po = Event_sim.domino_evaluate cd dr in
    let po_ref = Compiled.eval cd dr in
    if po <> po_ref then Alcotest.fail "domino evaluation mismatch"
  done;
  check "adder ok" true true

(* --- Two-phase dynamic nMOS networks: Fig. 7 -------------------------------- *)

let test_two_phase_discipline () =
  let chain = Generators.carry_chain ~technology:Technology.Dynamic_nmos 5 in
  check "carry chain disciplined" true (Two_phase.check_discipline chain);
  let tree = Generators.and_tree ~technology:Technology.Dynamic_nmos 8 in
  check "balanced tree disciplined" true (Two_phase.check_discipline tree);
  (* a gate consuming a same-parity net violates the rule *)
  let nand2 = Stdcells.nand 2 Technology.Dynamic_nmos in
  let b = Netlist.Builder.create "bad" in
  let a = Netlist.Builder.input b "a" in
  let cc = Netlist.Builder.input b "cc" in
  let w1 = Netlist.Builder.add b nand2 ~inputs:[ a; cc ] ~output:"w1" in
  let w2 = Netlist.Builder.add b nand2 ~inputs:[ w1; cc ] ~output:"w2" in
  let w3 = Netlist.Builder.add b nand2 ~inputs:[ w2; w1 ] ~output:"w3" in
  (* w3 (level 3) consumes w1 (level 1): same parity *)
  Netlist.Builder.output b w3;
  let bad = Netlist.Builder.finish b in
  check "skip-level edge flagged" false (Two_phase.check_discipline bad)

let test_two_phase_matches_combinational () =
  let nl = Generators.carry_chain ~technology:Technology.Dynamic_nmos 4 in
  let c = Compiled.compile nl in
  let sim = Two_phase.create c in
  let n = Compiled.n_inputs c in
  for row = 0 to (1 lsl n) - 1 do
    let pi = Array.init n (fun i -> (row lsr i) land 1 = 1) in
    if Two_phase.run_vector sim pi <> Compiled.eval c pi then
      Alcotest.fail (Fmt.str "two-phase mismatch at row %d" row)
  done;
  check "outputs valid" true (Two_phase.outputs_valid sim)

let test_two_phase_rejects_domino () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 3 in
  check "domino rejected" true
    (match Two_phase.create (Compiled.compile nl) with
    | _ -> false
    | exception Two_phase.Not_dynamic_nmos -> true)

let test_two_phase_pipeline () =
  (* Balanced AND tree: PIs feed level-1 gates only, so the wave pipeline
     is consistent.  Every Some result must equal the combinational value
     of the vector that entered latency cycles earlier. *)
  let nl = Generators.and_tree ~technology:Technology.Dynamic_nmos 8 in
  let c = Compiled.compile nl in
  let sim = Two_phase.create c in
  let prng = Dynmos_util.Prng.create 77 in
  let vectors = List.init 12 (fun _ -> Array.init 8 (fun _ -> Dynmos_util.Prng.bool prng)) in
  let results = Two_phase.run_stream sim vectors in
  let produced = List.filter_map Fun.id results in
  check "all vectors answered" true (List.length produced >= List.length vectors);
  List.iteri
    (fun i out ->
      if i < List.length vectors then begin
        let expected = Compiled.eval c (List.nth vectors i) in
        if out <> expected then Alcotest.fail (Fmt.str "pipeline result %d wrong" i)
      end)
    produced

(* --- Timing: Fig. 2 / CMOS-3b ------------------------------------------------ *)

let test_timing_arrival () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 4 in
  let c = Compiled.compile nl in
  let delays = Timing.nominal_delays c in
  (* Propagating carry straight through: c0=1, all p=1, all g=0. *)
  let pi =
    Array.of_list
      (List.map
         (fun name -> name.[0] = 'c' || name.[0] = 'p')
         (Netlist.inputs nl))
  in
  let t = Timing.critical_path c delays pi in
  Alcotest.(check (float 1e-9)) "chain of 4" 4.0 t;
  (* Killing propagation shortens the path. *)
  let pi0 = Array.map (fun _ -> false) pi in
  Alcotest.(check (float 1e-9)) "no rise no delay" 0.0 (Timing.critical_path c delays pi0)

let test_at_speed_detection () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 4 in
  let c = Compiled.compile nl in
  let delays = Timing.nominal_delays c in
  let pi =
    Array.of_list (List.map (fun name -> name.[0] = 'c' || name.[0] = 'p') (Netlist.inputs nl))
  in
  let period = Timing.min_period c delays [ pi ] in
  (* A 2x-slow first gate pushes the sensitized carry past the period. *)
  check "slow gate detected at speed" true
    (Timing.at_speed_detects c delays ~gate_id:0 ~factor:2.0 ~period pi);
  (* At a relaxed clock the same fault escapes. *)
  check "escapes at slow clock" false
    (Timing.at_speed_detects c delays ~gate_id:0 ~factor:2.0 ~period:(period *. 4.0) pi);
  (* An unsensitized pattern does not expose it. *)
  let pi_dead = Array.map (fun _ -> false) pi in
  check "unsensitized escapes" false
    (Timing.at_speed_detects c delays ~gate_id:0 ~factor:2.0 ~period pi_dead)

(* --- Power / IDDQ ------------------------------------------------------------ *)

let test_power_model () =
  let open Dynmos_util in
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 8 in
  let c = Compiled.compile nl in
  let prng = Prng.create 7 in
  let mu, sigma = Power.baseline_stats c in
  check "positive stats" true (mu > 0.0 && sigma > 0.0);
  (* Sampled baseline stays within 6 sigma of the analytic mean. *)
  let sample = Power.baseline_current prng c in
  check "baseline plausible" true (Float.abs (sample -. mu) < 6.0 *. sigma);
  (* The bridge is active exactly when the gate's evaluation path is on. *)
  let pi_on =
    Array.of_list (List.map (fun name -> name.[0] = 'c' || name.[0] = 'p') (Netlist.inputs nl))
  in
  let pi_off = Array.map (fun _ -> false) pi_on in
  check "bridge active" true (Power.bridge_active c ~gate_id:7 pi_on);
  check "bridge inactive" false (Power.bridge_active c ~gate_id:7 pi_off);
  (* False-positive rate of the threshold test is low on this small
     circuit, detection rate high (the large-circuit flip is the bench's
     story). *)
  let fp = Power.detection_rate prng c ~faulty_gate:None pi_on in
  let dr = Power.detection_rate prng c ~faulty_gate:(Some 7) pi_on in
  check "few false positives" true (fp < 0.05);
  check "small circuit detects" true (dr > 0.9)

let () =
  Alcotest.run "sim"
    [
      ( "compiled",
        [
          Alcotest.test_case "matches reference eval" `Quick test_compiled_vs_reference;
          Alcotest.test_case "word packing" `Quick test_eval_words_packing;
          Alcotest.test_case "fault override" `Quick test_override;
          Alcotest.test_case "cone-restricted injection kernel" `Quick test_eval_cone_into;
          Alcotest.test_case "cone extraction" `Quick test_output_expr;
        ] );
      ( "charge_fig1",
        [
          Alcotest.test_case "fig1 function table" `Quick test_fig1_table;
          Alcotest.test_case "contention gives X" `Quick test_static_contention_is_x;
        ] );
      ( "combinationality",
        [
          Alcotest.test_case "domino cells, all faults" `Slow test_domino_always_combinational;
          Alcotest.test_case "dynamic nMOS cells, all faults" `Slow
            test_nmos_always_combinational;
          Alcotest.test_case "static is sequential" `Quick test_static_is_sequential;
          Alcotest.test_case "observed = predicted function" `Slow
            test_observed_equals_predicted;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_charge_theorem ] );
      ( "events_fig5",
        [
          Alcotest.test_case "static glitches, domino monotone" `Quick
            test_domino_monotone_vs_static_glitch;
          Alcotest.test_case "domino evaluation correct" `Quick test_domino_evaluate_correct;
        ] );
      ( "two_phase_fig7",
        [
          Alcotest.test_case "composition discipline" `Quick test_two_phase_discipline;
          Alcotest.test_case "matches combinational" `Quick test_two_phase_matches_combinational;
          Alcotest.test_case "rejects non-dynamic" `Quick test_two_phase_rejects_domino;
          Alcotest.test_case "wave pipelining" `Quick test_two_phase_pipeline;
        ] );
      ( "timing_fig2",
        [
          Alcotest.test_case "arrival times" `Quick test_timing_arrival;
          Alcotest.test_case "at-speed detection" `Quick test_at_speed_detection;
        ] );
      ("power", [ Alcotest.test_case "IDDQ model" `Quick test_power_model ]);
    ]
